//===- tests/ProfiledKernelTest.cpp - profile/direct equivalence -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The profiled-kernel fast path must be observationally identical to
// direct pairwise evaluation. The reference evaluators below rebuild
// the pre-profile tree-map semantics (aggregate every feature of both
// strings per pair, multiply shared aggregates), and the randomized
// sweeps assert dot(profile(A), profile(B)) matches them to 1e-9
// relative across alphabet sizes, lengths, weights and cut
// configurations. The precomputation seam (Kast suffix-automaton
// cache, combinator forwarding, computeKernelMatrix fast path) is
// checked against its unprepared counterpart the same way.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/StringSerializer.h"
#include "kernels/BagOfWordsKernel.h"
#include "kernels/Combinators.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

using namespace kast;

namespace {

WeightedString fromText(const std::shared_ptr<TokenTable> &Table,
                        const std::string &Text) {
  return parseWeightedString(Text, Table).take();
}

/// Random weighted string; with \p StructuralEvery > 0, roughly one in
/// that many tokens is a structural delimiter (for bag-of-words).
WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet,
                            size_t StructuralEvery = 0) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I) {
    if (StructuralEvery > 0 && R.uniformInt(1, StructuralEvery) == 1) {
      S.append(BlockLiteral, 1);
      continue;
    }
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Reference evaluators: the pre-profile tree-map semantics.
//===----------------------------------------------------------------------===//

std::map<std::vector<uint32_t>, double>
referenceGramValues(const WeightedString &X, size_t Length,
                    const SpectrumOptions &Options) {
  std::map<std::vector<uint32_t>, double> Values;
  const std::vector<uint32_t> &Ids = X.literalIds();
  if (Length > Ids.size())
    return Values;
  for (size_t I = 0; I + Length <= Ids.size(); ++I) {
    double Contribution = 1.0;
    if (Options.Weighted) {
      uint64_t W = X.rangeWeight(I, I + Length);
      if (W < Options.CutWeight)
        continue;
      Contribution = static_cast<double>(W);
    }
    std::vector<uint32_t> Key(Ids.begin() + I, Ids.begin() + I + Length);
    Values[std::move(Key)] += Contribution;
  }
  return Values;
}

double referenceSpectrum(const WeightedString &A, const WeightedString &B,
                         const SpectrumOptions &Options) {
  double Sum = 0.0;
  for (size_t L = Options.MinLength; L <= Options.MaxLength; ++L) {
    auto InA = referenceGramValues(A, L, Options);
    auto InB = referenceGramValues(B, L, Options);
    double LengthSum = 0.0;
    for (const auto &[Key, Value] : InA) {
      auto It = InB.find(Key);
      if (It != InB.end())
        LengthSum += Value * It->second;
    }
    Sum += std::pow(Options.Lambda, 2.0 * static_cast<double>(L)) * LengthSum;
  }
  return Sum;
}

bool isStructural(const std::string &Literal) {
  return Literal == RootLiteral || Literal == HandleLiteral ||
         Literal == BlockLiteral || Literal == LevelUpLiteral;
}

std::map<std::vector<uint32_t>, double>
referenceWordValues(const WeightedString &X, bool Weighted) {
  std::map<std::vector<uint32_t>, double> Values;
  std::vector<uint32_t> Word;
  double Weight = 0.0;
  auto Flush = [&] {
    if (!Word.empty())
      Values[Word] += Weighted ? Weight : 1.0;
    Word.clear();
    Weight = 0.0;
  };
  for (size_t I = 0; I < X.size(); ++I) {
    if (isStructural(X.literal(I))) {
      Flush();
      continue;
    }
    Word.push_back(X.literalId(I));
    Weight += static_cast<double>(X.weight(I));
  }
  Flush();
  return Values;
}

double referenceBagOfWords(const WeightedString &A, const WeightedString &B,
                           bool Weighted) {
  auto InA = referenceWordValues(A, Weighted);
  auto InB = referenceWordValues(B, Weighted);
  double Sum = 0.0;
  for (const auto &[Key, Value] : InA) {
    auto It = InB.find(Key);
    if (It != InB.end())
      Sum += Value * It->second;
  }
  return Sum;
}

void expectRelNear(double Actual, double Expected, const std::string &What) {
  double Tolerance = 1e-9 * std::max(1.0, std::fabs(Expected));
  EXPECT_NEAR(Actual, Expected, Tolerance) << What;
}

//===----------------------------------------------------------------------===//
// Randomized profile/direct equivalence
//===----------------------------------------------------------------------===//

TEST(ProfiledKernelTest, SpectrumFamilyMatchesReferenceRandomized) {
  Rng R(20260730);
  size_t Pairs = 0;
  const uint32_t Alphabets[] = {2, 4, 8, 26};
  const uint64_t Cuts[] = {0, 2, 5};
  const double Lambdas[] = {0.5, 1.0, 1.25};
  for (uint32_t Alphabet : Alphabets) {
    auto Table = TokenTable::create();
    for (int Trial = 0; Trial < 16; ++Trial) {
      WeightedString A =
          randomString(Table, R, R.uniformInt(0, 40), Alphabet);
      WeightedString B =
          randomString(Table, R, R.uniformInt(0, 40), Alphabet);
      SpectrumOptions Options;
      Options.MinLength = R.uniformInt(1, 3);
      Options.MaxLength = Options.MinLength + R.uniformInt(0, 2);
      Options.Lambda = Lambdas[R.uniformInt(0, 2)];
      Options.Weighted = R.flip(0.5);
      Options.CutWeight = Cuts[R.uniformInt(0, 2)];
      SpectrumFamilyKernel Kernel(Options);

      double Direct = referenceSpectrum(A, B, Options);
      double Profiled = Kernel.dot(Kernel.profile(A), Kernel.profile(B));
      expectRelNear(Profiled, Direct, Kernel.name());
      EXPECT_DOUBLE_EQ(Kernel.evaluate(A, B), Profiled) << Kernel.name();
      ++Pairs;
    }
  }
  // Concrete subclasses, including weighted/cut configurations.
  auto Table = TokenTable::create();
  for (int Trial = 0; Trial < 48; ++Trial) {
    WeightedString A = randomString(Table, R, R.uniformInt(0, 48), 6);
    WeightedString B = randomString(Table, R, R.uniformInt(0, 48), 6);
    bool Weighted = R.flip(0.5);
    uint64_t Cut = Cuts[R.uniformInt(0, 2)];

    KSpectrumKernel KSpec(R.uniformInt(1, 4), Weighted, Cut);
    expectRelNear(KSpec.dot(KSpec.profile(A), KSpec.profile(B)),
                  referenceSpectrum(A, B, KSpec.options()), KSpec.name());

    BlendedSpectrumKernel Blended(R.uniformInt(1, 3),
                                  Lambdas[R.uniformInt(0, 2)], Weighted,
                                  Cut);
    expectRelNear(Blended.dot(Blended.profile(A), Blended.profile(B)),
                  referenceSpectrum(A, B, Blended.options()),
                  Blended.name());

    BagOfTokensKernel Bag(Weighted, Cut);
    expectRelNear(Bag.dot(Bag.profile(A), Bag.profile(B)),
                  referenceSpectrum(A, B, Bag.options()), Bag.name());
    Pairs += 3;
  }
  EXPECT_GE(Pairs, 200u);
}

TEST(ProfiledKernelTest, BagOfWordsMatchesReferenceRandomized) {
  Rng R(77001);
  auto Table = TokenTable::create();
  for (int Trial = 0; Trial < 64; ++Trial) {
    WeightedString A = randomString(Table, R, R.uniformInt(0, 40), 5,
                                    /*StructuralEvery=*/4);
    WeightedString B = randomString(Table, R, R.uniformInt(0, 40), 5,
                                    /*StructuralEvery=*/4);
    bool Weighted = R.flip(0.5);
    BagOfWordsKernel Kernel(Weighted);
    double Direct = referenceBagOfWords(A, B, Weighted);
    double Profiled = Kernel.dot(Kernel.profile(A), Kernel.profile(B));
    expectRelNear(Profiled, Direct, Kernel.name());
    EXPECT_DOUBLE_EQ(Kernel.evaluate(A, B), Profiled);
  }
}

//===----------------------------------------------------------------------===//
// Edge cases
//===----------------------------------------------------------------------===//

TEST(ProfiledKernelTest, EmptyStringsProfileEmpty) {
  auto Table = TokenTable::create();
  WeightedString Empty(Table);
  WeightedString S = fromText(Table, "a b c");
  BlendedSpectrumKernel Blended(3, 0.5, true, 2);
  KSpectrumKernel KSpec(2);
  BagOfTokensKernel Bag;
  BagOfWordsKernel Words(true);
  for (const ProfiledStringKernel *Kernel :
       std::initializer_list<const ProfiledStringKernel *>{&Blended, &KSpec,
                                                           &Bag, &Words}) {
    EXPECT_TRUE(Kernel->profile(Empty).empty()) << Kernel->name();
    EXPECT_DOUBLE_EQ(Kernel->evaluate(Empty, S), 0.0) << Kernel->name();
    EXPECT_DOUBLE_EQ(Kernel->evaluate(Empty, Empty), 0.0) << Kernel->name();
  }
}

TEST(ProfiledKernelTest, CutAboveAllWeightsEmptiesProfile) {
  auto Table = TokenTable::create();
  // Max 2-gram weight is 3 + 4 = 7 < cut 100: everything filtered.
  WeightedString S = fromText(Table, "a:3 b:4 a:2");
  KSpectrumKernel Kernel(2, /*Weighted=*/true, /*CutWeight=*/100);
  EXPECT_TRUE(Kernel.profile(S).empty());
  EXPECT_DOUBLE_EQ(Kernel.evaluate(S, S), 0.0);
  // At the boundary the gram qualifies again.
  KSpectrumKernel Boundary(2, /*Weighted=*/true, /*CutWeight=*/7);
  EXPECT_DOUBLE_EQ(Boundary.evaluate(S, S), 49.0);
}

TEST(ProfiledKernelTest, ShorterThanMinLengthProfilesEmpty) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  KSpectrumKernel Kernel(5);
  EXPECT_TRUE(Kernel.profile(S).empty());
  EXPECT_DOUBLE_EQ(Kernel.evaluate(S, S), 0.0);
}

TEST(ProfiledKernelTest, WordSegmentationIsPartOfTheFeature) {
  auto Table = TokenTable::create();
  // One word {a b} vs two words {a}, {b}: no shared feature.
  WeightedString OneWord = fromText(Table, "a b");
  WeightedString TwoWords = fromText(Table, "a [BLOCK] b");
  BagOfWordsKernel Kernel;
  EXPECT_DOUBLE_EQ(Kernel.evaluate(OneWord, TwoWords), 0.0);
}

//===----------------------------------------------------------------------===//
// Precomputation seam: prepared == unprepared
//===----------------------------------------------------------------------===//

TEST(ProfiledKernelTest, KastPreparedMatchesDirect) {
  Rng R(424242);
  auto Table = TokenTable::create();
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  for (int Trial = 0; Trial < 32; ++Trial) {
    WeightedString A = randomString(Table, R, R.uniformInt(0, 48), 6);
    WeightedString B = randomString(Table, R, R.uniformInt(0, 48), 6);
    auto PrepA = Kernel.precompute(A);
    auto PrepB = Kernel.precompute(B);
    double Direct = Kernel.evaluate(A, B);
    EXPECT_DOUBLE_EQ(
        Kernel.evaluatePrepared(A, PrepA.get(), B, PrepB.get()), Direct);
    // One-sided caches must work too.
    EXPECT_DOUBLE_EQ(Kernel.evaluatePrepared(A, PrepA.get(), B, nullptr),
                     Direct);
    EXPECT_DOUBLE_EQ(Kernel.evaluatePrepared(A, nullptr, B, PrepB.get()),
                     Direct);
  }
}

TEST(ProfiledKernelTest, CombinatorsPreparedMatchesDirect) {
  Rng R(8899);
  auto Table = TokenTable::create();
  auto Blended =
      std::make_shared<BlendedSpectrumKernel>(3, 0.8, /*Weighted=*/true,
                                              /*CutWeight=*/2);
  auto Kast = std::make_shared<KastSpectrumKernel>(
      KastKernelOptions{/*CutWeight=*/2, CutPolicy::PerOccurrence, false});
  SumKernel Sum({Blended, Kast}, {0.25, 2.0});
  ProductKernel Product({Blended, Kast});
  NormalizedKernel Normalized(Blended);
  for (int Trial = 0; Trial < 24; ++Trial) {
    WeightedString A = randomString(Table, R, R.uniformInt(1, 32), 4);
    WeightedString B = randomString(Table, R, R.uniformInt(1, 32), 4);
    for (const StringKernel *Kernel :
         std::initializer_list<const StringKernel *>{&Sum, &Product,
                                                     &Normalized}) {
      auto PrepA = Kernel->precompute(A);
      auto PrepB = Kernel->precompute(B);
      double Direct = Kernel->evaluate(A, B);
      double Prepared =
          Kernel->evaluatePrepared(A, PrepA.get(), B, PrepB.get());
      expectRelNear(Prepared, Direct, Kernel->name());
    }
  }
}

TEST(ProfiledKernelTest, AllShippedKernelsPreparedMatchesDirect) {
  // Every kernel in the library — including GapWeightedKernel, whose
  // seam is a documented pass-through — must be observationally
  // identical through evaluate and evaluatePrepared, with two, one, or
  // zero cached handles.
  Rng R(20260731);
  auto Table = TokenTable::create();
  auto Blended =
      std::make_shared<BlendedSpectrumKernel>(3, 0.8, /*Weighted=*/true,
                                              /*CutWeight=*/2);
  auto Kast = std::make_shared<KastSpectrumKernel>(
      KastKernelOptions{/*CutWeight=*/2});
  KSpectrumKernel KSpec(2, /*Weighted=*/true, /*CutWeight=*/2);
  BagOfTokensKernel Bag;
  BagOfWordsKernel Words(true);
  GapWeightedKernel Gap(3, 0.5);
  SumKernel Sum({Blended, Kast}, {0.5, 1.5});
  ProductKernel Product({Blended, Kast});
  NormalizedKernel Normalized(Blended);
  const std::initializer_list<const StringKernel *> Kernels = {
      Blended.get(), Kast.get(), &KSpec, &Bag,       &Words,
      &Gap,          &Sum,       &Product, &Normalized};
  for (int Trial = 0; Trial < 12; ++Trial) {
    WeightedString A = randomString(Table, R, R.uniformInt(1, 24), 4,
                                    /*StructuralEvery=*/6);
    WeightedString B = randomString(Table, R, R.uniformInt(1, 24), 4,
                                    /*StructuralEvery=*/6);
    for (const StringKernel *Kernel : Kernels) {
      auto PrepA = Kernel->precompute(A);
      auto PrepB = Kernel->precompute(B);
      double Direct = Kernel->evaluate(A, B);
      expectRelNear(Kernel->evaluatePrepared(A, PrepA.get(), B, PrepB.get()),
                    Direct, Kernel->name() + " (both handles)");
      expectRelNear(Kernel->evaluatePrepared(A, PrepA.get(), B, nullptr),
                    Direct, Kernel->name() + " (left handle)");
      expectRelNear(Kernel->evaluatePrepared(A, nullptr, B, PrepB.get()),
                    Direct, Kernel->name() + " (right handle)");
      expectRelNear(Kernel->evaluatePrepared(A, nullptr, B, nullptr),
                    Direct, Kernel->name() + " (no handles)");
    }
  }
}

TEST(ProfiledKernelTest, NormalizedPreparedHandlesVanishingSelfKernel) {
  auto Table = TokenTable::create();
  NormalizedKernel Kernel(std::make_shared<KSpectrumKernel>(3));
  WeightedString Short = fromText(Table, "a b"); // No 3-grams: k(x,x) = 0.
  WeightedString Long = fromText(Table, "a b c d");
  auto PrepShort = Kernel.precompute(Short);
  auto PrepLong = Kernel.precompute(Long);
  EXPECT_DOUBLE_EQ(
      Kernel.evaluatePrepared(Short, PrepShort.get(), Long, PrepLong.get()),
      0.0);
  EXPECT_DOUBLE_EQ(Kernel.evaluate(Short, Long), 0.0);
}

//===----------------------------------------------------------------------===//
// Gram matrix: fast path == generic path
//===----------------------------------------------------------------------===//

std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R, size_t N) {
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < N; ++I)
    Corpus.push_back(randomString(Table, R, R.uniformInt(1, 24), 5));
  return Corpus;
}

void expectSameMatrix(const Matrix &Fast, const Matrix &Generic,
                      const std::string &What) {
  ASSERT_EQ(Fast.rows(), Generic.rows()) << What;
  for (size_t I = 0; I < Fast.rows(); ++I)
    for (size_t J = 0; J < Fast.cols(); ++J)
      EXPECT_NEAR(Fast.at(I, J), Generic.at(I, J),
                  1e-9 * std::max(1.0, std::fabs(Generic.at(I, J))))
          << What << " at (" << I << ", " << J << ")";
}

TEST(ProfiledKernelTest, GramFastPathMatchesGenericPath) {
  Rng R(5150);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 12);

  auto Blended =
      std::make_shared<BlendedSpectrumKernel>(3, 1.0, /*Weighted=*/true,
                                              /*CutWeight=*/2);
  auto Kast = std::make_shared<KastSpectrumKernel>(
      KastKernelOptions{/*CutWeight=*/2, CutPolicy::PerOccurrence, false});
  SumKernel Sum({Blended, Kast});

  for (const StringKernel *Kernel :
       std::initializer_list<const StringKernel *>{Blended.get(),
                                                   Kast.get(), &Sum}) {
    for (bool Normalize : {false, true}) {
      KernelMatrixOptions Fast;
      Fast.Normalize = Normalize;
      Fast.RepairPsd = true;
      Fast.Threads = 1;
      KernelMatrixOptions Generic = Fast;
      Generic.UsePrecompute = false;
      expectSameMatrix(computeKernelMatrix(*Kernel, Corpus, Fast),
                       computeKernelMatrix(*Kernel, Corpus, Generic),
                       Kernel->name());
    }
  }
}

TEST(ProfiledKernelTest, GramPairIndexInversionCoversAllCells) {
  // Off-diagonal zeros would betray a mis-inverted pair index; use a
  // kernel that is nonzero for every pair (bag of tokens over a shared
  // alphabet with every string containing token "t0").
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < 9; ++I) {
    WeightedString S(Table);
    S.append("t0", 1);
    S.append("t" + std::to_string(I % 3), 2);
    Corpus.push_back(S);
  }
  BagOfTokensKernel Kernel;
  KernelMatrixOptions Options;
  Options.Normalize = false;
  for (size_t Threads : {size_t(1), size_t(0)}) {
    Options.Threads = Threads;
    Matrix K = computeKernelMatrix(Kernel, Corpus, Options);
    for (size_t I = 0; I < K.rows(); ++I)
      for (size_t J = 0; J < K.cols(); ++J) {
        EXPECT_GT(K.at(I, J), 0.0) << I << "," << J;
        EXPECT_DOUBLE_EQ(K.at(I, J), K.at(J, I));
        EXPECT_DOUBLE_EQ(K.at(I, J), Kernel.evaluate(Corpus[I], Corpus[J]));
      }
  }
}

} // namespace
