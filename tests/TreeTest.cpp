//===- tests/TreeTest.cpp - tree library unit tests ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tree/PatternTree.h"
#include "tree/TreeBuilder.h"
#include "tree/TreeCompressor.h"
#include "tree/TreeDump.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

/// Leaf helper.
PatternNode makeOp(const std::string &Name, uint64_t Bytes,
                   uint64_t Reps = 1) {
  PatternNode N;
  N.Kind = NodeKind::Op;
  N.NameSig = {Name};
  N.ByteSig = {Bytes};
  N.Reps = Reps;
  return N;
}

/// The op leaves under the first BLOCK of the first HANDLE.
std::vector<PatternNode> firstBlockLeaves(const PatternTree &Tree) {
  const PatternNode &Root = Tree.node(Tree.root());
  EXPECT_FALSE(Root.Children.empty());
  const PatternNode &Handle = Tree.node(Root.Children[0]);
  EXPECT_FALSE(Handle.Children.empty());
  const PatternNode &Block = Tree.node(Handle.Children[0]);
  std::vector<PatternNode> Leaves;
  for (NodeId Id : Block.Children)
    Leaves.push_back(Tree.node(Id));
  return Leaves;
}

} // namespace

//===----------------------------------------------------------------------===//
// PatternTree basics
//===----------------------------------------------------------------------===//

TEST(PatternTreeTest, RootAlwaysExists) {
  PatternTree T;
  EXPECT_EQ(T.size(), 1u);
  EXPECT_EQ(T.node(T.root()).Kind, NodeKind::Root);
  EXPECT_EQ(T.depth(T.root()), 0u);
}

TEST(PatternTreeTest, AddChildTracksParentAndDepth) {
  PatternTree T;
  NodeId H = T.addChild(T.root(), NodeKind::Handle);
  NodeId B = T.addChild(H, NodeKind::Block);
  NodeId O = T.addOp(B, "read", 8);
  EXPECT_EQ(T.depth(H), 1u);
  EXPECT_EQ(T.depth(B), 2u);
  EXPECT_EQ(T.depth(O), 3u);
  EXPECT_EQ(T.node(O).Parent, B);
}

TEST(PatternTreeTest, PreorderVisitsParentBeforeChildren) {
  PatternTree T;
  NodeId H1 = T.addChild(T.root(), NodeKind::Handle);
  NodeId B1 = T.addChild(H1, NodeKind::Block);
  NodeId O1 = T.addOp(B1, "read", 1);
  NodeId H2 = T.addChild(T.root(), NodeKind::Handle);
  std::vector<NodeId> Order = T.preorder();
  ASSERT_EQ(Order.size(), 5u);
  EXPECT_EQ(Order[0], T.root());
  EXPECT_EQ(Order[1], H1);
  EXPECT_EQ(Order[2], B1);
  EXPECT_EQ(Order[3], O1);
  EXPECT_EQ(Order[4], H2);
}

TEST(PatternTreeTest, LabelsAndSignatures) {
  PatternNode N = makeOp("read", 1024, 5);
  EXPECT_EQ(N.nameLabel(), "read");
  EXPECT_EQ(N.byteLabel(), "1024");
  N.NameSig.push_back("write");
  N.ByteSig.push_back(2048);
  EXPECT_EQ(N.nameLabel(), "read+write");
  EXPECT_EQ(N.byteLabel(), "1024+2048");
  EXPECT_FALSE(N.isZeroBytes());
  PatternNode Z = makeOp("lseek", 0);
  EXPECT_TRUE(Z.isZeroBytes());
}

TEST(PatternTreeTest, TotalRepsCountsLeaves) {
  PatternTree T;
  NodeId H = T.addChild(T.root(), NodeKind::Handle);
  NodeId B = T.addChild(H, NodeKind::Block);
  T.addOp(B, "read", 8, 5);
  T.addOp(B, "write", 8, 2);
  EXPECT_EQ(T.totalReps(), 7u);
  EXPECT_EQ(T.numLeaves(), 2u);
}

//===----------------------------------------------------------------------===//
// TreeBuilder
//===----------------------------------------------------------------------===//

TEST(TreeBuilderTest, GroupsByHandleAndBlock) {
  Trace T;
  T.append(OpKind::Open, 3);
  T.append(OpKind::Read, 3, 100);
  T.append(OpKind::Read, 4, 50); // Interleaved handle without open.
  T.append(OpKind::Write, 3, 100);
  T.append(OpKind::Close, 3);
  PatternTree Tree = buildTree(T);

  const PatternNode &Root = Tree.node(Tree.root());
  ASSERT_EQ(Root.Children.size(), 2u); // Two handles.
  const PatternNode &H3 = Tree.node(Root.Children[0]);
  EXPECT_EQ(H3.Handle, 3u);
  ASSERT_EQ(H3.Children.size(), 1u); // One block.
  EXPECT_EQ(Tree.node(H3.Children[0]).Children.size(), 2u); // read, write.

  const PatternNode &H4 = Tree.node(Root.Children[1]);
  EXPECT_EQ(H4.Handle, 4u);
  ASSERT_EQ(H4.Children.size(), 1u); // Implicit block.
}

TEST(TreeBuilderTest, OpenClosePairsMakeSeparateBlocks) {
  Trace T;
  for (int Round = 0; Round < 3; ++Round) {
    T.append(OpKind::Open, 1);
    T.append(OpKind::Read, 1, 10);
    T.append(OpKind::Close, 1);
  }
  PatternTree Tree = buildTree(T);
  const PatternNode &H = Tree.node(Tree.node(Tree.root()).Children[0]);
  EXPECT_EQ(H.Children.size(), 3u);
}

TEST(TreeBuilderTest, ReopenWithoutCloseStartsFreshBlock) {
  Trace T;
  T.append(OpKind::Open, 1);
  T.append(OpKind::Read, 1, 10);
  T.append(OpKind::Open, 1); // No close before.
  T.append(OpKind::Write, 1, 10);
  PatternTree Tree = buildTree(T);
  const PatternNode &H = Tree.node(Tree.node(Tree.root()).Children[0]);
  ASSERT_EQ(H.Children.size(), 2u);
  EXPECT_EQ(Tree.node(H.Children[0]).Children.size(), 1u);
  EXPECT_EQ(Tree.node(H.Children[1]).Children.size(), 1u);
}

TEST(TreeBuilderTest, DanglingCloseIgnored) {
  Trace T;
  T.append(OpKind::Close, 1);
  T.append(OpKind::Read, 1, 10);
  PatternTree Tree = buildTree(T);
  EXPECT_EQ(Tree.numLeaves(), 1u);
}

TEST(TreeBuilderTest, NegligibleOpsDropped) {
  Trace T;
  T.append(OpKind::Open, 1);
  T.append(OpKind::Fileno, 1);
  T.append(OpKind::Mmap, 1, 4096);
  T.append(OpKind::Read, 1, 10);
  T.append(OpKind::Close, 1);
  PatternTree Tree = buildTree(T);
  EXPECT_EQ(Tree.numLeaves(), 1u);
}

TEST(TreeBuilderTest, IgnoreBytesZeroesLeaves) {
  Trace T;
  T.append(OpKind::Read, 1, 100);
  TreeBuilderOptions Options;
  Options.IgnoreBytes = true;
  PatternTree Tree = buildTree(T, Options);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_TRUE(Leaves[0].isZeroBytes());
}

TEST(TreeBuilderTest, OpenCloseEmitNoLeaves) {
  Trace T;
  T.append(OpKind::Open, 1);
  T.append(OpKind::Close, 1);
  PatternTree Tree = buildTree(T);
  EXPECT_EQ(Tree.numLeaves(), 0u);
}

//===----------------------------------------------------------------------===//
// tryMergeRule — the four §3.1 transformations in isolation
//===----------------------------------------------------------------------===//

TEST(MergeRuleTest, Rule1SameNameSameBytes) {
  std::optional<PatternNode> M =
      tryMergeRule(1, makeOp("read", 8, 2), makeOp("read", 8, 3));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->nameLabel(), "read");
  EXPECT_EQ(M->byteLabel(), "8");
  EXPECT_EQ(M->Reps, 5u);
}

TEST(MergeRuleTest, Rule1RejectsDifferences) {
  EXPECT_FALSE(tryMergeRule(1, makeOp("read", 8), makeOp("read", 9)));
  EXPECT_FALSE(tryMergeRule(1, makeOp("read", 8), makeOp("write", 8)));
}

TEST(MergeRuleTest, Rule2SameNameDifferentBytes) {
  // The paper's struct example: read 2 bytes then read 4 bytes.
  std::optional<PatternNode> M =
      tryMergeRule(2, makeOp("read", 2), makeOp("read", 4));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->nameLabel(), "read");
  EXPECT_EQ(M->byteLabel(), "2+4");
  EXPECT_EQ(M->Reps, 2u);
}

TEST(MergeRuleTest, Rule2RejectsSameBytes) {
  EXPECT_FALSE(tryMergeRule(2, makeOp("read", 2), makeOp("read", 2)));
  EXPECT_FALSE(tryMergeRule(2, makeOp("read", 2), makeOp("write", 4)));
}

TEST(MergeRuleTest, Rule3DifferentNameSameBytes) {
  // The paper's copy example: interlaced read and write of n bytes.
  std::optional<PatternNode> M =
      tryMergeRule(3, makeOp("read", 64), makeOp("write", 64));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->nameLabel(), "read+write");
  EXPECT_EQ(M->byteLabel(), "64");
  EXPECT_EQ(M->Reps, 2u);
}

TEST(MergeRuleTest, Rule4ZeroByteSideDropped) {
  // The paper's lseek+write example.
  std::optional<PatternNode> M =
      tryMergeRule(4, makeOp("lseek", 0), makeOp("write", 512));
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->nameLabel(), "lseek+write");
  EXPECT_EQ(M->byteLabel(), "512");
  EXPECT_EQ(M->Reps, 2u);

  // Order-independent on the zero side.
  std::optional<PatternNode> M2 =
      tryMergeRule(4, makeOp("write", 512), makeOp("lseek", 0));
  ASSERT_TRUE(M2.has_value());
  EXPECT_EQ(M2->nameLabel(), "write+lseek");
  EXPECT_EQ(M2->byteLabel(), "512");
}

TEST(MergeRuleTest, Rule4NeedsExactlyOneZeroSide) {
  EXPECT_FALSE(tryMergeRule(4, makeOp("lseek", 0), makeOp("fsync", 0)));
  EXPECT_FALSE(tryMergeRule(4, makeOp("read", 2), makeOp("write", 4)));
}

TEST(MergeRuleTest, StructuralNodesNeverMerge) {
  PatternNode Block;
  Block.Kind = NodeKind::Block;
  for (int Rule = 1; Rule <= 4; ++Rule)
    EXPECT_FALSE(tryMergeRule(Rule, Block, makeOp("read", 8)));
}

//===----------------------------------------------------------------------===//
// compressTree — sweeps and passes
//===----------------------------------------------------------------------===//

namespace {

/// Builds a single-block trace with the given (name, bytes) ops.
Trace blockTrace(const std::vector<std::pair<std::string, uint64_t>> &Ops) {
  Trace T;
  T.append(OpKind::Open, 1);
  for (const auto &[Name, Bytes] : Ops)
    T.append(TraceEvent(Name, 1, Bytes));
  T.append(OpKind::Close, 1);
  return T;
}

} // namespace

TEST(CompressorTest, Rule1CollapsesARunInOneSweep) {
  Trace T = blockTrace({{"read", 8}, {"read", 8}, {"read", 8}, {"read", 8}});
  PatternTree Tree = buildTree(T);
  CompressionStats Stats = compressTree(Tree);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0].Reps, 4u);
  EXPECT_EQ(Stats.MergesByRule[0], 3u);
  EXPECT_EQ(Stats.LeavesBefore, 4u);
  EXPECT_EQ(Stats.LeavesAfter, 1u);
}

TEST(CompressorTest, AlternationCompressesAcrossPasses) {
  // read[2] read[4] read[2] read[4]:
  //   pass 1 rule 2 pairs -> read[2+4] read[2+4]
  //   pass 2 rule 1       -> read[2+4] x2
  Trace T = blockTrace({{"read", 2}, {"read", 4}, {"read", 2}, {"read", 4}});
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0].nameLabel(), "read");
  EXPECT_EQ(Leaves[0].byteLabel(), "2+4");
  EXPECT_EQ(Leaves[0].Reps, 4u);
}

TEST(CompressorTest, SinglePassLeavesAlternationPairs) {
  Trace T = blockTrace({{"read", 2}, {"read", 4}, {"read", 2}, {"read", 4}});
  PatternTree Tree = buildTree(T);
  CompressorOptions Options;
  Options.Passes = 1;
  compressTree(Tree, Options);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 2u);
  EXPECT_EQ(Leaves[0].byteLabel(), "2+4");
  EXPECT_EQ(Leaves[1].byteLabel(), "2+4");
}

TEST(CompressorTest, CopyPatternUsesRule3ThenRule1) {
  // Interlaced read/write with equal sizes: a tacit copy loop.
  Trace T = blockTrace(
      {{"read", 64}, {"write", 64}, {"read", 64}, {"write", 64}});
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0].nameLabel(), "read+write");
  EXPECT_EQ(Leaves[0].Reps, 4u);
}

TEST(CompressorTest, SeekWriteLoopUsesRule4) {
  Trace T = blockTrace(
      {{"lseek", 0}, {"write", 512}, {"lseek", 0}, {"write", 512}});
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  std::vector<PatternNode> Leaves = firstBlockLeaves(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0].nameLabel(), "lseek+write");
  EXPECT_EQ(Leaves[0].byteLabel(), "512");
  EXPECT_EQ(Leaves[0].Reps, 4u);
}

TEST(CompressorTest, RepsConservedByCompression) {
  Trace T = blockTrace({{"read", 2}, {"read", 4}, {"read", 2}, {"read", 4},
                        {"write", 8}, {"write", 8}, {"lseek", 0},
                        {"write", 16}});
  PatternTree Tree = buildTree(T);
  uint64_t Before = Tree.totalReps();
  compressTree(Tree);
  EXPECT_EQ(Tree.totalReps(), Before);
}

TEST(CompressorTest, ZeroPassesIsIdentity) {
  Trace T = blockTrace({{"read", 8}, {"read", 8}});
  PatternTree Tree = buildTree(T);
  PatternTree Copy = Tree;
  CompressorOptions Options;
  Options.Passes = 0;
  compressTree(Tree, Options);
  EXPECT_TRUE(Tree.equalsStructurally(Copy));
}

TEST(CompressorTest, DisabledRulesDoNotFire) {
  Trace T = blockTrace({{"read", 8}, {"read", 8}});
  PatternTree Tree = buildTree(T);
  CompressorOptions Options;
  Options.EnableRule1 = false;
  CompressionStats Stats = compressTree(Tree, Options);
  EXPECT_EQ(Stats.MergesByRule[0], 0u);
  EXPECT_EQ(Tree.numLeaves(), 2u);
}

TEST(CompressorTest, CompressionIsIdempotentAtFixpoint) {
  Trace T = blockTrace({{"read", 2}, {"read", 4}, {"read", 2}, {"read", 4},
                        {"write", 8}, {"write", 8}});
  PatternTree Tree = buildTree(T);
  CompressorOptions Many;
  Many.Passes = 8;
  compressTree(Tree, Many);
  PatternTree Again = Tree;
  compressTree(Again, Many);
  EXPECT_TRUE(Tree.equalsStructurally(Again));
}

TEST(CompressorTest, BlocksDoNotMergeAcrossBoundaries) {
  Trace T;
  T.append(OpKind::Open, 1);
  T.append(OpKind::Read, 1, 8);
  T.append(OpKind::Close, 1);
  T.append(OpKind::Open, 1);
  T.append(OpKind::Read, 1, 8);
  T.append(OpKind::Close, 1);
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  EXPECT_EQ(Tree.numLeaves(), 2u); // One per block; no cross-merge.
}

//===----------------------------------------------------------------------===//
// Dumps
//===----------------------------------------------------------------------===//

TEST(TreeDumpTest, AsciiShowsHierarchy) {
  Trace T = blockTrace({{"read", 1024}, {"read", 1024}});
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  std::string Out = dumpTreeAscii(Tree);
  EXPECT_NE(Out.find("ROOT"), std::string::npos);
  EXPECT_NE(Out.find("HANDLE 1"), std::string::npos);
  EXPECT_NE(Out.find("BLOCK"), std::string::npos);
  EXPECT_NE(Out.find("read[1024] x2"), std::string::npos);
}

TEST(TreeDumpTest, DotIsWellFormed) {
  Trace T = blockTrace({{"write", 4}});
  PatternTree Tree = buildTree(T);
  std::string Out = dumpTreeDot(Tree, "g");
  EXPECT_NE(Out.find("digraph g {"), std::string::npos);
  EXPECT_NE(Out.find("->"), std::string::npos);
  EXPECT_EQ(Out.back(), '\n');
}
