//===- tests/StraceAdapterTest.cpp - strace ingestion unit tests -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/StraceAdapter.h"

#include <gtest/gtest.h>

using namespace kast;

TEST(StraceAdapterTest, BasicSession) {
  const char *Log =
      R"(openat(AT_FDCWD, "data.bin", O_RDONLY) = 3
read(3, "\177ELF\2\1\1\0"..., 4096) = 4096
read(3, "", 4096) = 1024
lseek(3, 1024, SEEK_SET) = 1024
write(3, "abc", 3) = 3
fsync(3) = 0
close(3) = 0
)";
  StraceStats Stats;
  Expected<Trace> T = parseStrace(Log, "session", &Stats);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 7u);
  EXPECT_EQ(T->events()[0], TraceEvent("open", 3));
  EXPECT_EQ(T->events()[1], TraceEvent("read", 3, 4096));
  EXPECT_EQ(T->events()[2], TraceEvent("read", 3, 1024));
  EXPECT_EQ(T->events()[3], TraceEvent("lseek", 3));
  EXPECT_EQ(T->events()[4], TraceEvent("write", 3, 3));
  EXPECT_EQ(T->events()[5], TraceEvent("fsync", 3));
  EXPECT_EQ(T->events()[6], TraceEvent("close", 3));
  EXPECT_EQ(Stats.EventsEmitted, 7u);
  EXPECT_EQ(Stats.CallsFailed, 0u);
}

TEST(StraceAdapterTest, FailedCallsDropped) {
  const char *Log = R"(open("missing", O_RDONLY) = -1 ENOENT (No such file)
openat(AT_FDCWD, "there", O_RDONLY) = 4
read(4, "", 16) = -1 EAGAIN (Resource temporarily unavailable)
close(4) = 0
)";
  StraceStats Stats;
  Expected<Trace> T = parseStrace(Log, "", &Stats);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 2u);
  EXPECT_EQ(T->events()[0].Op, "open");
  EXPECT_EQ(T->events()[1].Op, "close");
  EXPECT_EQ(Stats.CallsFailed, 2u);
}

TEST(StraceAdapterTest, NonIoSyscallsSkipped) {
  const char *Log = R"(execve("/bin/true", ["true"], 0x7ffe) = 0
brk(NULL) = 0x55f0
mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3, 0) = 0x7f1a
openat(AT_FDCWD, "f", O_RDONLY) = 3
futex(0x7f, FUTEX_WAKE_PRIVATE, 1) = 0
close(3) = 0
)";
  StraceStats Stats;
  Expected<Trace> T = parseStrace(Log, "", &Stats);
  ASSERT_TRUE(T.hasValue()) << T.message();
  EXPECT_EQ(T->size(), 2u);
  EXPECT_EQ(Stats.LinesSkipped, 4u);
}

TEST(StraceAdapterTest, PidAndTimestampPrefixes) {
  // strace -f / -t prefixes.
  const char *Log = R"(12345 14:03:22 read(7, "x", 1) = 1
12345 14:03:22 close(7) = 0
)";
  Expected<Trace> T = parseStrace(Log);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 2u);
  EXPECT_EQ(T->events()[0].Handle, 7u);
}

TEST(StraceAdapterTest, UnfinishedResumedSkipped) {
  const char *Log =
      "read(3,  <unfinished ...>\n"
      "<... read resumed>\"x\", 1) = 1\n"
      "close(3) = 0\n";
  StraceStats Stats;
  Expected<Trace> T = parseStrace(Log, "", &Stats);
  ASSERT_TRUE(T.hasValue()) << T.message();
  EXPECT_EQ(T->size(), 1u);
  EXPECT_EQ(T->events()[0].Op, "close");
}

TEST(StraceAdapterTest, PreadMapsToRead) {
  const char *Log = "pread64(5, \"abc\", 4096, 8192) = 4096\n"
                    "pwrite64(5, \"abc\", 512, 0) = 512\n";
  Expected<Trace> T = parseStrace(Log);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 2u);
  EXPECT_EQ(T->events()[0], TraceEvent("read", 5, 4096));
  EXPECT_EQ(T->events()[1], TraceEvent("write", 5, 512));
}

TEST(StraceAdapterTest, QuotedCommasDoNotConfuseArguments) {
  const char *Log = "write(3, \"a,b,c\", 5) = 5\n";
  Expected<Trace> T = parseStrace(Log);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 1u);
  EXPECT_EQ(T->events()[0].Bytes, 5u);
}

TEST(StraceAdapterTest, DecoratedFdsAccepted) {
  // strace -y renders fds as "3</path/to/file>".
  const char *Log = "read(3</data/file.bin>, \"x\", 100) = 100\n";
  Expected<Trace> T = parseStrace(Log);
  ASSERT_TRUE(T.hasValue()) << T.message();
  ASSERT_EQ(T->size(), 1u);
  EXPECT_EQ(T->events()[0].Handle, 3u);
}

TEST(StraceAdapterTest, EmptyAndGarbage) {
  EXPECT_TRUE(parseStrace("").hasValue());
  Expected<Trace> T = parseStrace("+++ exited with 0 +++\n--- SIGCHLD ---\n");
  ASSERT_TRUE(T.hasValue());
  EXPECT_TRUE(T->empty());
}

TEST(StraceAdapterTest, MissingFileFails) {
  EXPECT_FALSE(parseStraceFile("/nonexistent/kast.strace").hasValue());
}
