//===- tests/KernelMatrixTest.cpp - incremental Gram growth ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The KernelMatrix growth contract: appendRows must evaluate exactly
// the entries the new strings introduce (verified by an
// evaluation-count probe) and produce the same matrix as a one-shot
// build; the closed-form pair-index inversions must agree with
// loop-based references across the whole size range the float-root
// "nudge" is supposed to cover; normalization must keep an exactly
// unit diagonal even for zero-length strings.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/StringSerializer.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R, size_t N) {
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < N; ++I)
    Corpus.push_back(randomString(Table, R, R.uniformInt(1, 24), 5));
  return Corpus;
}

/// Forwarding wrapper that counts pairwise evaluations — the probe the
/// appendRows contract is asserted with.
class CountingKernel : public StringKernel {
public:
  explicit CountingKernel(const StringKernel &Inner) : Inner(Inner) {}

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override {
    ++Evaluations;
    return Inner.evaluate(A, B);
  }
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override {
    ++Precomputations;
    return Inner.precompute(X);
  }
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override {
    ++Evaluations;
    return Inner.evaluatePrepared(A, PrepA, B, PrepB);
  }
  std::string name() const override { return "counting(" + Inner.name() + ")"; }

  void reset() {
    Evaluations = 0;
    Precomputations = 0;
  }

  mutable std::atomic<size_t> Evaluations{0};
  mutable std::atomic<size_t> Precomputations{0};

private:
  const StringKernel &Inner;
};

void expectSameMatrix(const Matrix &A, const Matrix &B) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < A.cols(); ++J)
      EXPECT_NEAR(A.at(I, J), B.at(I, J),
                  1e-12 * std::max(1.0, std::fabs(B.at(I, J))))
          << "(" << I << ", " << J << ")";
}

//===----------------------------------------------------------------------===//
// appendRows: exact evaluation counts, no rebuild of existing entries
//===----------------------------------------------------------------------===//

TEST(KernelMatrixTest, AppendRowsEvaluatesOnlyNewEntries) {
  const size_t N = 96, M = 32;
  Rng R(96320);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Base = randomCorpus(Table, R, N);
  std::vector<WeightedString> Extra = randomCorpus(Table, R, M);

  BlendedSpectrumKernel Inner(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  CountingKernel Probe(Inner);

  KernelMatrixOptions Options;
  Options.Threads = 1;
  KernelMatrix Gram(Probe, Options);

  Gram.appendRows(Base);
  EXPECT_EQ(Probe.Evaluations.load(), N + N * (N - 1) / 2);
  EXPECT_EQ(Probe.Precomputations.load(), N);

  // Growing by M must evaluate exactly the new entries — M diagonal
  // values, the N×M rectangle, and the M(M-1)/2 new-pair triangle —
  // and none of the existing N×N block.
  Probe.reset();
  Gram.appendRows(Extra);
  EXPECT_EQ(Probe.Evaluations.load(), M + N * M + M * (M - 1) / 2);
  EXPECT_EQ(Probe.Precomputations.load(), M);
  EXPECT_EQ(Gram.size(), N + M);

  // And the grown matrix must equal the one-shot build over all N+M.
  std::vector<WeightedString> All = Base;
  All.insert(All.end(), Extra.begin(), Extra.end());
  expectSameMatrix(Gram.raw(),
                   [&] {
                     KernelMatrixOptions RawOptions = Options;
                     RawOptions.Normalize = false;
                     return computeKernelMatrix(Inner, All, RawOptions);
                   }());
  expectSameMatrix(Gram.materialize(), computeKernelMatrix(Inner, All, Options));
}

TEST(KernelMatrixTest, AppendRowsInStagesMatchesOneShot) {
  Rng R(171717);
  auto Table = TokenTable::create();
  std::vector<WeightedString> All = randomCorpus(Table, R, 23);

  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Threads = 0; // Exercise the parallel fill.

  KernelMatrix Gram(Kernel, Options);
  size_t Cuts[] = {0, 7, 7, 15, 16, 23};
  for (size_t C = 0; C + 1 < std::size(Cuts); ++C)
    Gram.appendRows({All.begin() + Cuts[C], All.begin() + Cuts[C + 1]});

  EXPECT_EQ(Gram.size(), All.size());
  expectSameMatrix(Gram.materialize(), computeKernelMatrix(Kernel, All, Options));
}

TEST(KernelMatrixTest, AppendRowsWithoutPrecompute) {
  Rng R(5);
  auto Table = TokenTable::create();
  std::vector<WeightedString> All = randomCorpus(Table, R, 10);

  BlendedSpectrumKernel Kernel(2);
  KernelMatrixOptions Options;
  Options.UsePrecompute = false;
  Options.Threads = 1;

  KernelMatrix Gram(Kernel, Options);
  Gram.appendRows({All.begin(), All.begin() + 6});
  Gram.appendRows({All.begin() + 6, All.end()});
  expectSameMatrix(Gram.materialize(), computeKernelMatrix(Kernel, All, Options));
}

//===----------------------------------------------------------------------===//
// Closed-form pair-index inversions vs loop-based references
//===----------------------------------------------------------------------===//

GramPair loopInvertTriangle(size_t P, size_t N) {
  size_t Start = 0;
  for (size_t I = 0; I + 1 < N; ++I) {
    size_t RowLength = N - I - 1;
    if (P < Start + RowLength)
      return {I, I + 1 + (P - Start)};
    Start += RowLength;
  }
  ADD_FAILURE() << "pair index " << P << " out of range for N=" << N;
  return {0, 0};
}

GramPair loopInvertAppend(size_t P, size_t OldN) {
  size_t Start = 0;
  for (size_t R = 0;; ++R) {
    size_t RowLength = OldN + R;
    if (P < Start + RowLength)
      return {OldN + R, P - Start};
    Start += RowLength;
  }
}

TEST(KernelMatrixTest, TriangleInversionExhaustiveSmall) {
  for (size_t N = 2; N <= 40; ++N)
    for (size_t P = 0; P < N * (N - 1) / 2; ++P)
      EXPECT_EQ(invertTrianglePairIndex(P, N), loopInvertTriangle(P, N))
          << "N=" << N << " P=" << P;
}

TEST(KernelMatrixTest, TriangleInversionRandomizedLarge) {
  Rng R(314159);
  for (int Trial = 0; Trial < 400; ++Trial) {
    size_t N = R.uniformInt(2, 10000);
    size_t NumPairs = N * (N - 1) / 2;
    size_t P = R.uniformInt(0, NumPairs - 1);
    EXPECT_EQ(invertTrianglePairIndex(P, N), loopInvertTriangle(P, N))
        << "N=" << N << " P=" << P;
    // Boundaries, where an off-by-one float root would land.
    EXPECT_EQ(invertTrianglePairIndex(0, N), loopInvertTriangle(0, N));
    EXPECT_EQ(invertTrianglePairIndex(NumPairs - 1, N),
              loopInvertTriangle(NumPairs - 1, N));
    size_t Row = R.uniformInt(0, N - 2);
    size_t RowStart = Row * (2 * N - Row - 1) / 2;
    EXPECT_EQ(invertTrianglePairIndex(RowStart, N),
              loopInvertTriangle(RowStart, N))
        << "N=" << N << " rowStart(" << Row << ")";
  }
}

TEST(KernelMatrixTest, AppendInversionExhaustiveSmall) {
  for (size_t OldN = 0; OldN <= 24; ++OldN)
    for (size_t M = 1; M <= 24; ++M) {
      size_t NumPairs = OldN * M + M * (M - 1) / 2;
      for (size_t P = 0; P < NumPairs; ++P)
        EXPECT_EQ(invertAppendPairIndex(P, OldN), loopInvertAppend(P, OldN))
            << "OldN=" << OldN << " P=" << P;
    }
}

TEST(KernelMatrixTest, AppendInversionRandomizedLarge) {
  Rng R(271828);
  for (int Trial = 0; Trial < 400; ++Trial) {
    size_t OldN = R.uniformInt(0, 10000);
    size_t M = R.uniformInt(1, 512);
    size_t NumPairs = OldN * M + M * (M - 1) / 2;
    size_t P = R.uniformInt(0, NumPairs - 1);
    EXPECT_EQ(invertAppendPairIndex(P, OldN), loopInvertAppend(P, OldN))
        << "OldN=" << OldN << " P=" << P;
    EXPECT_EQ(invertAppendPairIndex(0, OldN), loopInvertAppend(0, OldN));
    EXPECT_EQ(invertAppendPairIndex(NumPairs - 1, OldN),
              loopInvertAppend(NumPairs - 1, OldN));
  }
}

//===----------------------------------------------------------------------===//
// Normalization edge case: zero-length strings
//===----------------------------------------------------------------------===//

TEST(KernelMatrixTest, ZeroLengthStringNormalizesToExactUnitDiagonal) {
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus;
  Corpus.push_back(WeightedString(Table, "empty")); // k(x, x) = 0.
  Corpus.push_back(parseWeightedString("a b c", Table, "s1").take());
  Corpus.push_back(parseWeightedString("a b", Table, "s2").take());

  BlendedSpectrumKernel Kernel(3);
  KernelMatrixOptions Options;
  Options.Threads = 1;
  Matrix K = computeKernelMatrix(Kernel, Corpus, Options);

  for (size_t I = 0; I < K.rows(); ++I)
    EXPECT_EQ(K.at(I, I), 1.0) << "diagonal " << I;
  // The zero-self-kernel row is explicitly zero off the diagonal, in
  // both directions.
  for (size_t J = 1; J < K.cols(); ++J) {
    EXPECT_EQ(K.at(0, J), 0.0);
    EXPECT_EQ(K.at(J, 0), 0.0);
  }
  // Raw (unnormalized) keeps the honest zero self-kernel.
  Options.Normalize = false;
  Matrix Raw = computeKernelMatrix(Kernel, Corpus, Options);
  EXPECT_EQ(Raw.at(0, 0), 0.0);
}

} // namespace
