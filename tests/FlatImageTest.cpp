//===- tests/FlatImageTest.cpp - v3 flat-image cache format ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The zero-copy persistence contract of core/FlatImage: a flat image
// round-trips a ProfileStoreCache bit-exactly whether it is mmapped or
// read through the buffered fallback, the mapping survives unlink and
// writer mutation (copy-on-write promotion), the quantized and routing
// sidecars ride along, and every corruption mode — truncation, flipped
// section bytes, a tampered section table, a wrong kernel hash, a
// misaligned section — fails loudly with a diagnostic naming the
// problem instead of serving garbage.
//
//===----------------------------------------------------------------------===//

#include "core/FlatImage.h"
#include "core/ProfileSerializer.h"
#include "core/ProfileStore.h"
#include "index/IndexService.h"
#include "kernels/SpectrumKernels.h"
#include "util/Hashing.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

ProfileStoreCache makeStoreCache(Rng &R, size_t N,
                                 const std::string &KernelName) {
  auto Table = TokenTable::create();
  BlendedSpectrumKernel Kernel(3, 0.8, /*Weighted=*/true, /*CutWeight=*/2);
  ProfileStoreCache Cache;
  Cache.KernelName = KernelName;
  for (size_t I = 0; I < N; ++I) {
    WeightedString S = randomString(Table, R, R.uniformInt(1, 32), 6);
    Cache.Names.push_back("s" + std::to_string(I));
    Cache.Labels.push_back(I % 2 ? "odd" : "even");
    Cache.Store.append(Kernel.profile(S));
  }
  return Cache;
}

std::string tempImagePath(const std::string &Stem) {
  return testing::TempDir() + "/kast_" + Stem + ".kfi";
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

uint64_t readU64(const std::string &Bytes, size_t At) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(
             static_cast<unsigned char>(Bytes[At + static_cast<size_t>(I)]))
         << (8 * I);
  return V;
}

void writeU64(std::string &Bytes, size_t At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Bytes[At + static_cast<size_t>(I)] =
        static_cast<char>((V >> (8 * I)) & 0xFF);
}

uint32_t readU32(const std::string &Bytes, size_t At) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(
             static_cast<unsigned char>(Bytes[At + static_cast<size_t>(I)]))
         << (8 * I);
  return V;
}

/// Locates section \p Id in raw image bytes via the section table.
/// Returns the index of its 32-byte table entry, or npos.
size_t findTableEntry(const std::string &Bytes, FlatSectionId Id) {
  const uint32_t SectionCount = readU32(Bytes, 12);
  for (uint32_t I = 0; I < SectionCount; ++I) {
    const size_t Entry = 64 + static_cast<size_t>(I) * 32;
    if (readU32(Bytes, Entry) == static_cast<uint32_t>(Id))
      return Entry;
  }
  return std::string::npos;
}

/// Recomputes the header checksum (over bytes [0,48) plus the section
/// table) after a test deliberately patched a covered field — so the
/// corruption under test is reached instead of masked by the header
/// checksum check.
void fixHeaderSum(std::string &Bytes) {
  const uint32_t SectionCount = readU32(Bytes, 12);
  std::string Checked = Bytes.substr(0, 48) +
                        Bytes.substr(64, static_cast<size_t>(SectionCount) * 32);
  writeU64(Bytes, 48, checksumBytes(Checked.data(), Checked.size()));
}

void expectStoresBitExact(const ProfileStore &A, const ProfileStore &B) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.entryCount(), B.entryCount());
  EXPECT_EQ(A.hashes(), B.hashes());
  EXPECT_EQ(A.offsets(), B.offsets());
  for (size_t I = 0; I < A.entryCount(); ++I)
    EXPECT_EQ(std::bit_cast<uint64_t>(A.values()[I]),
              std::bit_cast<uint64_t>(B.values()[I]));
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(std::bit_cast<uint64_t>(A.selfDot(I)),
              std::bit_cast<uint64_t>(B.selfDot(I)));
    EXPECT_EQ(std::bit_cast<uint64_t>(A.norm(I)),
              std::bit_cast<uint64_t>(B.norm(I)));
  }
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(FlatImageTest, RoundTripsStoreBitExactly) {
  Rng R(70707);
  ProfileStoreCache Cache = makeStoreCache(R, 23, "blended");
  const std::string Path = tempImagePath("rt");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());

  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->KernelName, "blended");
  EXPECT_EQ(Loaded->Names, Cache.Names);
  EXPECT_EQ(Loaded->Labels, Cache.Labels);
  EXPECT_TRUE(Loaded->RouteBlob.empty());
  expectStoresBitExact(Loaded->Store, Cache.Store);
  EXPECT_TRUE(Loaded->Store.isFinalized());

  // Deep validation (full entry-section checksums) passes on an
  // intact file too.
  FlatImageReadOptions Deep;
  Deep.DeepValidate = true;
  Expected<ProfileStoreCache> Audited = readProfileStoreImageFile(Path, Deep);
  ASSERT_TRUE(Audited.hasValue()) << Audited.message();
  expectStoresBitExact(Audited->Store, Cache.Store);
}

TEST(FlatImageTest, BufferedFallbackMatchesMappedRead) {
  Rng R(80808);
  ProfileStoreCache Cache = makeStoreCache(R, 11, "k");
  const std::string Path = tempImagePath("buffered");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());

  Expected<ProfileStoreCache> Mapped = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Mapped.hasValue()) << Mapped.message();
  FlatImageReadOptions Buffered;
  Buffered.ForceBuffered = true;
  Expected<ProfileStoreCache> Heap = readProfileStoreImageFile(Path, Buffered);
  ASSERT_TRUE(Heap.hasValue()) << Heap.message();

  EXPECT_EQ(Heap->KernelName, Mapped->KernelName);
  EXPECT_EQ(Heap->Names, Mapped->Names);
  EXPECT_EQ(Heap->Labels, Mapped->Labels);
  expectStoresBitExact(Heap->Store, Mapped->Store);
  // Both paths view their backing (mmap or heap) rather than copying
  // into owned arenas.
  EXPECT_TRUE(Mapped->Store.isMapped());
  EXPECT_TRUE(Heap->Store.isMapped());
}

TEST(FlatImageTest, QuantizedAndRoutingSidecarsRideAlong) {
  Rng R(90909);
  ProfileStoreCache Cache = makeStoreCache(R, 15, "k");
  Cache.Store.buildQuantized();
  ASSERT_NE(Cache.Store.quantized(), nullptr);
  Cache.RouteBlob = std::string("opaque\0route\xFF bytes", 19);
  const std::string Path = tempImagePath("sidecars");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());

  FlatImageReadOptions Deep;
  Deep.DeepValidate = true;
  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path, Deep);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->RouteBlob, Cache.RouteBlob);
  const QuantizedStore *Q = Loaded->Store.quantized();
  ASSERT_NE(Q, nullptr);
  const QuantizedStore *Truth = Cache.Store.quantized();
  ASSERT_EQ(Q->size(), Truth->size());
  ASSERT_EQ(Q->entryCount(), Truth->entryCount());
  EXPECT_EQ(Q->values(), Truth->values());
  for (size_t I = 0; I < Q->size(); ++I)
    EXPECT_EQ(std::bit_cast<uint64_t>(Q->scale(I)),
              std::bit_cast<uint64_t>(Truth->scale(I)));
}

TEST(FlatImageTest, EmptyStoreRoundTrips) {
  ProfileStoreCache Cache;
  Cache.KernelName = "k";
  const std::string Path = tempImagePath("empty");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->KernelName, "k");
  EXPECT_EQ(Loaded->Store.size(), 0u);
  EXPECT_EQ(Loaded->Store.entryCount(), 0u);
  EXPECT_TRUE(Loaded->Names.empty());
  EXPECT_TRUE(Loaded->Labels.empty());
}

//===----------------------------------------------------------------------===//
// Mapping lifetime
//===----------------------------------------------------------------------===//

TEST(FlatImageTest, MappingSurvivesUnlink) {
  Rng R(111213);
  ProfileStoreCache Cache = makeStoreCache(R, 9, "k");
  const std::string Path = tempImagePath("unlink");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();

  ASSERT_TRUE(std::filesystem::remove(Path));
  // Every byte remains readable through the (anonymous-after-unlink)
  // mapping.
  expectStoresBitExact(Loaded->Store, Cache.Store);
}

TEST(FlatImageTest, WriterPromotionLeavesTheImageUntouched) {
  Rng R(141516);
  ProfileStoreCache Cache = makeStoreCache(R, 12, "k");
  const std::string Path = tempImagePath("promote");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  const std::string Before = readFileBytes(Path);

  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_TRUE(Loaded->Store.isMapped());

  // First mutation promotes the store to owned arrays; the mapped
  // bytes (and hence the file and every other process sharing its
  // pages) stay untouched.
  KernelProfile Extra;
  Extra.add(42, 2.5);
  Extra.finalize();
  const size_t NewIndex = Loaded->Store.append(Extra);
  EXPECT_EQ(NewIndex, Cache.Store.size());
  EXPECT_FALSE(Loaded->Store.isMapped());
  EXPECT_EQ(Loaded->Store.size(), Cache.Store.size() + 1);
  EXPECT_EQ(Loaded->Store.view(NewIndex).Hashes[0], 42u);

  // The pre-promotion prefix is still bit-exact...
  for (size_t I = 0; I < Cache.Store.size(); ++I) {
    const ProfileView A = Loaded->Store.view(I);
    const ProfileView B = Cache.Store.view(I);
    ASSERT_EQ(A.Size, B.Size);
    for (size_t E = 0; E < A.Size; ++E) {
      EXPECT_EQ(A.Hashes[E], B.Hashes[E]);
      EXPECT_EQ(std::bit_cast<uint64_t>(A.Values[E]),
                std::bit_cast<uint64_t>(B.Values[E]));
    }
  }
  // ...and the file bytes never changed: a fresh open still sees the
  // original store.
  EXPECT_EQ(readFileBytes(Path), Before);
  Expected<ProfileStoreCache> Again = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Again.hasValue()) << Again.message();
  EXPECT_EQ(Again->Store.size(), Cache.Store.size());
  expectStoresBitExact(Again->Store, Cache.Store);
}

//===----------------------------------------------------------------------===//
// Failure modes
//===----------------------------------------------------------------------===//

TEST(FlatImageTest, RejectsTruncation) {
  Rng R(171819);
  ProfileStoreCache Cache = makeStoreCache(R, 7, "k");
  const std::string Path = tempImagePath("truncate");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  const std::string Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 4096u);

  // Cuts inside the header, inside the section table, at a page
  // boundary, and one byte short of the end.
  for (size_t Cut : {size_t(10), size_t(80), size_t(4096), Bytes.size() - 1}) {
    const std::string Cropped = tempImagePath("truncate_cut");
    writeFileBytes(Cropped, Bytes.substr(0, Cut));
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Cropped);
    EXPECT_FALSE(E.hasValue()) << "cut at " << Cut;
    if (!E.hasValue()) {
      EXPECT_NE(E.message().find("truncated"), std::string::npos)
          << "cut at " << Cut << ": " << E.message();
    }
  }
}

TEST(FlatImageTest, RejectsSectionChecksumMismatch) {
  Rng R(202122);
  ProfileStoreCache Cache = makeStoreCache(R, 8, "k");
  const std::string Path = tempImagePath("badsum");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  const std::string Good = readFileBytes(Path);

  // A flipped byte in an O(N) metadata section (self-dots) fails every
  // open, shallow or deep.
  {
    const size_t Entry = findTableEntry(Good, FlatSectionId::SelfDots);
    ASSERT_NE(Entry, std::string::npos);
    std::string Bad = Good;
    Bad[static_cast<size_t>(readU64(Good, Entry + 8))] ^= 0x01;
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("checksum"), std::string::npos) << E.message();
  }

  // A flipped byte in an entry-sized section (hashes) is caught by
  // deep validation; the default open skips the O(entries) sweep on
  // the mapped path by design. (Under KAST_FORCE_BUFFERED the fallback
  // always deep-validates, so only the deep half applies.)
  {
    const size_t Entry = findTableEntry(Good, FlatSectionId::Hashes);
    ASSERT_NE(Entry, std::string::npos);
    std::string Bad = Good;
    // Flip a low bit of one hash value high enough up the lane to keep
    // per-profile hash ordering plausible either way; the checksum
    // check is what must fire.
    Bad[static_cast<size_t>(readU64(Good, Entry + 8))] ^= 0x01;
    writeFileBytes(Path, Bad);
    FlatImageReadOptions Deep;
    Deep.DeepValidate = true;
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path, Deep);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("checksum"), std::string::npos) << E.message();
    if (std::getenv("KAST_FORCE_BUFFERED") == nullptr) {
      Expected<ProfileStoreCache> Shallow = readProfileStoreImageFile(Path);
      EXPECT_TRUE(Shallow.hasValue()) << Shallow.message();
    }
  }
}

TEST(FlatImageTest, RejectsHeaderTamperAndWrongKernelHash) {
  Rng R(232425);
  ProfileStoreCache Cache = makeStoreCache(R, 6, "k");
  const std::string Path = tempImagePath("header");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  const std::string Good = readFileBytes(Path);

  // Tampering with the section table without fixing the header sum is
  // caught by the header checksum...
  {
    std::string Bad = Good;
    Bad[64 + 16] ^= 0x01; // Some section's byteSize field.
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("header checksum"), std::string::npos)
        << E.message();
  }
  // ...and a kernel hash that checks out against the header but not
  // the kernel-name bytes is caught by the cross-check.
  {
    std::string Bad = Good;
    writeU64(Bad, 16, readU64(Good, 16) ^ 0xDEADBEEFULL);
    fixHeaderSum(Bad);
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("kernel-name hash"), std::string::npos)
        << E.message();
  }
}

TEST(FlatImageTest, RejectsMisalignedSection) {
  Rng R(262728);
  ProfileStoreCache Cache = makeStoreCache(R, 5, "k");
  const std::string Path = tempImagePath("misaligned");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  std::string Bad = readFileBytes(Path);

  const size_t Entry = findTableEntry(Bad, FlatSectionId::Offsets);
  ASSERT_NE(Entry, std::string::npos);
  writeU64(Bad, Entry + 8, readU64(Bad, Entry + 8) + 4);
  fixHeaderSum(Bad);
  writeFileBytes(Path, Bad);
  Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
  ASSERT_FALSE(E.hasValue());
  EXPECT_NE(E.message().find("aligned"), std::string::npos) << E.message();
}

TEST(FlatImageTest, RejectsCorruptCsrOffsets) {
  Rng R(293031);
  ProfileStoreCache Cache = makeStoreCache(R, 5, "k");
  const std::string Path = tempImagePath("csr");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  std::string Bad = readFileBytes(Path);

  // Break monotonicity of the offsets array and re-checksum the
  // section so validateCsrOffsets (not the checksum) fires — the
  // shared seam with the v2 reader.
  const size_t Entry = findTableEntry(Bad, FlatSectionId::Offsets);
  ASSERT_NE(Entry, std::string::npos);
  const size_t Offset = static_cast<size_t>(readU64(Bad, Entry + 8));
  const size_t Size = static_cast<size_t>(readU64(Bad, Entry + 16));
  writeU64(Bad, Offset + 8, readU64(Bad, Offset + 16) + 100);
  writeU64(Bad, Entry + 24, checksumBytes(Bad.data() + Offset, Size));
  fixHeaderSum(Bad);
  writeFileBytes(Path, Bad);
  Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
  ASSERT_FALSE(E.hasValue());
  EXPECT_NE(E.message().find("offsets"), std::string::npos) << E.message();
}

TEST(FlatImageTest, FormatsRejectEachOtherWithPointers) {
  Rng R(323334);
  ProfileStoreCache Cache = makeStoreCache(R, 4, "k");
  const std::string V2Path = testing::TempDir() + "/kast_cross.kpc";
  const std::string V3Path = tempImagePath("cross");
  ASSERT_TRUE(writeProfileStoreCacheFile(Cache, V2Path).ok());
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, V3Path).ok());

  // The flat-image reader names the v2 entry point for v2 bytes...
  Expected<ProfileStoreCache> V2AsImage = readProfileStoreImageFile(V2Path);
  ASSERT_FALSE(V2AsImage.hasValue());
  EXPECT_NE(V2AsImage.message().find("readProfileStoreCacheFile"),
            std::string::npos)
      << V2AsImage.message();
  // ...and the v2 reader names the flat-image entry point for v3
  // bytes.
  Expected<ProfileStoreCache> V3AsCache = readProfileStoreCacheFile(V3Path);
  ASSERT_FALSE(V3AsCache.hasValue());
  EXPECT_NE(V3AsCache.message().find("readProfileStoreImageFile"),
            std::string::npos)
      << V3AsCache.message();
}

TEST(FlatImageTest, RejectsMissingFile) {
  Expected<ProfileStoreCache> E =
      readProfileStoreImageFile(testing::TempDir() + "/kast_no_such.kfi");
  EXPECT_FALSE(E.hasValue());
}

//===----------------------------------------------------------------------===//
// v4 routing arenas
//===----------------------------------------------------------------------===//

/// Bit-identical, not just ==: a restored routed shard must reproduce
/// the fitted service's similarity bit patterns, so a double compare
/// (which lets -0.0 pass for +0.0) is not enough.
void expectHitsBitIdentical(const std::vector<ServiceHit> &Restored,
                            const std::vector<ServiceHit> &Truth,
                            const std::string &What) {
  ASSERT_EQ(Restored.size(), Truth.size()) << What;
  for (size_t I = 0; I < Truth.size(); ++I) {
    EXPECT_EQ(Restored[I].Name, Truth[I].Name) << What << " rank " << I;
    EXPECT_EQ(Restored[I].Label, Truth[I].Label) << What << " rank " << I;
    EXPECT_EQ(std::bit_cast<uint64_t>(Restored[I].Similarity),
              std::bit_cast<uint64_t>(Truth[I].Similarity))
        << What << " rank " << I;
  }
}

/// A single-shard routed service over \p Cache's entries; its
/// toShardCaches export carries the flat routing arenas a v4 image
/// serializes.
IndexService makeRoutedService(const ProfileStoreCache &Cache) {
  IndexService Service(Cache.KernelName, {.Shards = 1, .SealThreshold = 8});
  for (size_t I = 0; I < Cache.Store.size(); ++I)
    Service.add(Cache.Names.str(I), Cache.Labels.str(I),
                Cache.Store.materialize(I));
  RoutingOptions Route;
  Route.Cluster.NumCentroids = 4;
  Route.MaxDocFrequency = 0.9;
  Route.DefaultNProbe = 2;
  Route.RerankBudget = 8;
  Service.rebuildRouting(Route, 1);
  return Service;
}

/// Writes a routed single-shard image at \p Path and returns the
/// fitted service (the differential truth for restored queries).
IndexService writeRoutedImage(Rng &R, size_t N, const std::string &Path) {
  ProfileStoreCache Corpus = makeStoreCache(R, N, "k");
  IndexService Service = makeRoutedService(Corpus);
  std::vector<ProfileStoreCache> Exported = Service.toShardCaches();
  EXPECT_NE(Exported[0].Routing, nullptr);
  EXPECT_TRUE(writeProfileStoreImageFile(Exported[0], Path).ok());
  return Service;
}

TEST(FlatImageTest, RoutedImageRestoresWithoutRefitOrRebuild) {
  Rng R(353637);
  const std::string Path = tempImagePath("routed_rt");
  IndexService Service = writeRoutedImage(R, 32, Path);

  // Routing arenas bump the image to version 4.
  EXPECT_EQ(readU32(readFileBytes(Path), 8), 4u);

  const uint64_t Fits = kmeansFitCount();
  const uint64_t Rebuilds = postingRebuildCount();
  FlatImageReadOptions Deep;
  Deep.DeepValidate = true;
  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path, Deep);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_NE(Loaded->Routing, nullptr);
  EXPECT_EQ(Loaded->Routing->Covered, Loaded->Store.size());
  // Strings decode lazily: the open materialized no name or label.
  if (std::getenv("KAST_FORCE_BUFFERED") == nullptr) {
    EXPECT_TRUE(Loaded->Names.isMapped());
    EXPECT_TRUE(Loaded->Labels.isMapped());
  }

  std::vector<ProfileStoreCache> Caches;
  Caches.push_back(Loaded.take());
  Expected<IndexService> Restored = IndexService::fromShardCaches(
      std::move(Caches), {.Shards = 1, .SealThreshold = 8});
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  ASSERT_EQ(Restored->snapshot().routedShardCount(), 1u);
  // The whole restore performed no k-means fit and no posting rebuild.
  EXPECT_EQ(kmeansFitCount(), Fits);
  EXPECT_EQ(postingRebuildCount(), Rebuilds);

  // Mapped-arena answers are bit-identical to the fitted service's,
  // routed (pruned, budgeted) and exact alike.
  auto Table = TokenTable::create();
  BlendedSpectrumKernel Kernel(3, 0.8, /*Weighted=*/true, /*CutWeight=*/2);
  for (int I = 0; I < 6; ++I) {
    KernelProfile Q = Kernel.profile(randomString(Table, R, 24, 6));
    expectHitsBitIdentical(Restored->queryApprox(Q, 5, true, 0, 1),
                           Service.queryApprox(Q, 5, true, 0, 1),
                           "routed q" + std::to_string(I));
    expectHitsBitIdentical(Restored->query(Q, 5, true, 1),
                           Service.query(Q, 5, true, 1),
                           "exact q" + std::to_string(I));
  }
}

TEST(FlatImageTest, RoutedRestoreBufferedMatchesMapped) {
  Rng R(383940);
  const std::string Path = tempImagePath("routed_buffered");
  IndexService Service = writeRoutedImage(R, 24, Path);

  FlatImageReadOptions Buffered;
  Buffered.ForceBuffered = true;
  const uint64_t Fits = kmeansFitCount();
  const uint64_t Rebuilds = postingRebuildCount();
  Expected<ProfileStoreCache> Heap = readProfileStoreImageFile(Path, Buffered);
  ASSERT_TRUE(Heap.hasValue()) << Heap.message();
  ASSERT_NE(Heap->Routing, nullptr);

  std::vector<ProfileStoreCache> Caches;
  Caches.push_back(Heap.take());
  Expected<IndexService> Restored = IndexService::fromShardCaches(
      std::move(Caches), {.Shards = 1, .SealThreshold = 8});
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  ASSERT_EQ(Restored->snapshot().routedShardCount(), 1u);
  // The buffered fallback views its heap copy exactly like the mmap
  // path views the mapping: still no refit, no rebuild.
  EXPECT_EQ(kmeansFitCount(), Fits);
  EXPECT_EQ(postingRebuildCount(), Rebuilds);

  auto Table = TokenTable::create();
  BlendedSpectrumKernel Kernel(3, 0.8, /*Weighted=*/true, /*CutWeight=*/2);
  for (int I = 0; I < 5; ++I) {
    KernelProfile Q = Kernel.profile(randomString(Table, R, 20, 6));
    expectHitsBitIdentical(Restored->queryApprox(Q, 4, true, 0, 1),
                           Service.queryApprox(Q, 4, true, 0, 1),
                           "buffered q" + std::to_string(I));
  }
}

TEST(FlatImageTest, RoutedSectionTruncationAndChecksums) {
  Rng R(414243);
  const std::string Path = tempImagePath("routed_corrupt");
  writeRoutedImage(R, 16, Path);
  const std::string Good = readFileBytes(Path);

  // Truncation inside the routing tail of the image.
  {
    writeFileBytes(Path, Good.substr(0, Good.size() - 1));
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("truncated"), std::string::npos)
        << E.message();
  }

  // A flipped byte in an O(N) routing section (the assignments) fails
  // every open, shallow or deep.
  {
    const size_t Entry = findTableEntry(Good, FlatSectionId::RouteAssignments);
    ASSERT_NE(Entry, std::string::npos);
    std::string Bad = Good;
    Bad[static_cast<size_t>(readU64(Good, Entry + 8))] ^= 0x01;
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("checksum"), std::string::npos) << E.message();
  }

  // A flipped byte in an entry-sized routing payload (posting values)
  // is caught by deep validation only — the shallow mapped open skips
  // the O(postings) sweep by design.
  {
    const size_t Entry = findTableEntry(Good, FlatSectionId::PostingValues);
    ASSERT_NE(Entry, std::string::npos);
    std::string Bad = Good;
    Bad[static_cast<size_t>(readU64(Good, Entry + 8))] ^= 0x01;
    writeFileBytes(Path, Bad);
    FlatImageReadOptions Deep;
    Deep.DeepValidate = true;
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path, Deep);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("checksum"), std::string::npos) << E.message();
    if (std::getenv("KAST_FORCE_BUFFERED") == nullptr) {
      Expected<ProfileStoreCache> Shallow = readProfileStoreImageFile(Path);
      EXPECT_TRUE(Shallow.hasValue()) << Shallow.message();
    }
  }

  // A misaligned routing section is structural, caught before any
  // checksum work.
  {
    const size_t Entry = findTableEntry(Good, FlatSectionId::RouteMeta);
    ASSERT_NE(Entry, std::string::npos);
    std::string Bad = Good;
    writeU64(Bad, Entry + 8, readU64(Good, Entry + 8) + 4);
    fixHeaderSum(Bad);
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("aligned"), std::string::npos) << E.message();
  }

  // The twelve routing sections are all-or-nothing: dropping the last
  // one from the table (and re-signing the header) is rejected, not
  // silently downgraded to an unrouted image.
  {
    std::string Bad = Good;
    const uint32_t SectionCount = readU32(Good, 12);
    ASSERT_EQ(readU32(Bad, 64 + (SectionCount - 1) * 32),
              static_cast<uint32_t>(FlatSectionId::PostingValues));
    Bad[12] = static_cast<char>(SectionCount - 1);
    fixHeaderSum(Bad);
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("all of their sections"), std::string::npos)
        << E.message();
  }
}

TEST(FlatImageTest, RoutedSectionsRejectedUnderVersionSkew) {
  Rng R(444546);
  const std::string Path = tempImagePath("routed_skew");
  writeRoutedImage(R, 12, Path);
  const std::string Good = readFileBytes(Path);

  // Routing sections under a version-3 header: a v3-era reader (or a
  // rolled-back binary) must fail loudly on the unknown ids.
  {
    std::string Bad = Good;
    Bad[8] = 3;
    fixHeaderSum(Bad);
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("unknown section id"), std::string::npos)
        << E.message();
  }
  // A future version is rejected outright.
  {
    std::string Bad = Good;
    Bad[8] = 5;
    fixHeaderSum(Bad);
    writeFileBytes(Path, Bad);
    Expected<ProfileStoreCache> E = readProfileStoreImageFile(Path);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("version"), std::string::npos) << E.message();
  }
}

TEST(FlatImageTest, SectionlessV3ImagesStillLoadUnrouted) {
  // An unrouted cache writes the bit-stable version-3 layout; opening
  // it yields no routing arenas and the caller falls back to a
  // rebuild (or stays unrouted) exactly as before v4 existed.
  Rng R(474849);
  ProfileStoreCache Cache = makeStoreCache(R, 10, "k");
  const std::string Path = tempImagePath("v3_fallback");
  ASSERT_TRUE(writeProfileStoreImageFile(Cache, Path).ok());
  EXPECT_EQ(readU32(readFileBytes(Path), 8), 3u);
  Expected<ProfileStoreCache> Loaded = readProfileStoreImageFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->Routing, nullptr);
  expectStoresBitExact(Loaded->Store, Cache.Store);
}

} // namespace
