//===- tests/ExplainTest.cpp - kernel explanation API ----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"
#include "core/PreorderEncoder.h"
#include "core/StringSerializer.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

/// The §3.2 worked-example strings (see KastKernelTest.cpp).
class ExplainWorkedExample : public ::testing::Test {
protected:
  void SetUp() override {
    Table = TokenTable::create();
    A = parseWeightedString("s:4 m:8 u:7 f1:10 s:9 f2:9 u:4 f3:9 u:4",
                            Table, "A")
            .take();
    B = parseWeightedString("s:6 m:4 u:7 g1:9 s:5 m:6 u:7 g2:8", Table,
                            "B")
            .take();
  }

  std::shared_ptr<TokenTable> Table;
  WeightedString A, B;
  KastSpectrumKernel Kernel{KastKernelOptions{/*CutWeight=*/4}};
};

} // namespace

TEST_F(ExplainWorkedExample, ContributionsMatchEq11) {
  KernelExplanation E = explainKernel(Kernel, A, B);
  ASSERT_EQ(E.Features.size(), 3u);
  // Sorted by contribution: S1 = 19*35 = 665, S3 = 15*14 = 210,
  // S2 = 13*11 = 143.
  EXPECT_DOUBLE_EQ(E.Features[0].Contribution, 665.0);
  EXPECT_EQ(E.Features[0].Substring, "s m u");
  EXPECT_DOUBLE_EQ(E.Features[1].Contribution, 210.0);
  EXPECT_EQ(E.Features[1].Substring, "u");
  EXPECT_DOUBLE_EQ(E.Features[2].Contribution, 143.0);
  EXPECT_EQ(E.Features[2].Substring, "s");
  EXPECT_DOUBLE_EQ(E.KernelValue, 1018.0);
  EXPECT_NEAR(E.NormalizedValue, 1018.0 / 3328.0, 1e-12);
  EXPECT_EQ(E.WeightA, 64u);
  EXPECT_EQ(E.WeightB, 52u);
}

TEST_F(ExplainWorkedExample, SharesSumToOne) {
  KernelExplanation E = explainKernel(Kernel, A, B);
  double Total = 0.0;
  for (const FeatureContribution &C : E.Features)
    Total += C.Share;
  EXPECT_NEAR(Total, 1.0, 1e-12);
}

TEST_F(ExplainWorkedExample, FormattingContainsKeyNumbers) {
  std::string Out = formatExplanation(explainKernel(Kernel, A, B));
  EXPECT_NE(Out.find("s m u"), std::string::npos);
  EXPECT_NE(Out.find("665.0"), std::string::npos);
  EXPECT_NE(Out.find("1018.0"), std::string::npos);
  EXPECT_NE(Out.find("0.3059"), std::string::npos);
  EXPECT_NE(Out.find("64 / 52"), std::string::npos);
}

TEST_F(ExplainWorkedExample, MaxRowsTruncates) {
  std::string Out =
      formatExplanation(explainKernel(Kernel, A, B), /*MaxRows=*/1);
  EXPECT_NE(Out.find("(2 more)"), std::string::npos);
  EXPECT_EQ(Out.find("143.0"), std::string::npos);
}

TEST(ExplainTest, DisjointStringsExplainToNothing) {
  auto Table = TokenTable::create();
  WeightedString A = parseWeightedString("a:5", Table).take();
  WeightedString B = parseWeightedString("b:5", Table).take();
  KastSpectrumKernel Kernel({/*CutWeight=*/1});
  KernelExplanation E = explainKernel(Kernel, A, B);
  EXPECT_TRUE(E.Features.empty());
  EXPECT_DOUBLE_EQ(E.KernelValue, 0.0);
  EXPECT_DOUBLE_EQ(E.NormalizedValue, 0.0);
}

//===----------------------------------------------------------------------===//
// PreorderEncoder (shared by tree and AST flattening)
//===----------------------------------------------------------------------===//

TEST(PreorderEncoderTest, EmptyInput) {
  auto Table = TokenTable::create();
  WeightedString S = encodePreorder({}, Table);
  EXPECT_TRUE(S.empty());
}

TEST(PreorderEncoderTest, SiblingAndAscentWeights) {
  auto Table = TokenTable::create();
  // root(0) -> a(1) -> b(2), then sibling of a: c(1).
  std::vector<PreorderItem> Items = {
      {"root", 1, 0}, {"a", 1, 1}, {"b", 3, 2}, {"c", 1, 1}};
  WeightedString S = encodePreorder(Items, Table);
  EXPECT_EQ(formatWeightedString(S),
            "root:1 a:1 b:3 [LEVEL_UP]:2 c:1");
}

TEST(PreorderEncoderTest, TrailingLevelUp) {
  auto Table = TokenTable::create();
  std::vector<PreorderItem> Items = {{"root", 1, 0}, {"a", 1, 1}};
  PreorderEncodeOptions Options;
  Options.EmitTrailingLevelUp = true;
  WeightedString S = encodePreorder(Items, Table, Options);
  EXPECT_EQ(formatWeightedString(S), "root:1 a:1 [LEVEL_UP]:2");
}

TEST(PreorderEncoderTest, DeepChainNoLevelUps) {
  auto Table = TokenTable::create();
  std::vector<PreorderItem> Items;
  for (size_t D = 0; D < 6; ++D)
    Items.push_back({"n" + std::to_string(D), 1, D});
  WeightedString S = encodePreorder(Items, Table);
  EXPECT_EQ(S.size(), 6u); // Pure descent: no [LEVEL_UP] tokens.
  for (size_t I = 0; I < S.size(); ++I)
    EXPECT_NE(S.literal(I), LevelUpLiteral);
}
