//===- tests/WorkloadsTest.cpp - generators, mutator, corpus ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/CorpusIO.h"
#include "workloads/DatasetBuilder.h"
#include "workloads/Generators.h"
#include "workloads/Mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

using namespace kast;

namespace {

/// \returns the set of operation names in \p T.
std::set<std::string> opNames(const Trace &T) {
  std::set<std::string> Names;
  for (const TraceEvent &E : T.events())
    Names.insert(E.Op);
  return Names;
}

/// \returns true if every open on a handle is eventually closed.
bool openCloseBalanced(const Trace &T) {
  std::set<uint64_t> Open;
  for (const TraceEvent &E : T.events()) {
    if (E.isOpen())
      Open.insert(E.Handle);
    else if (E.isClose())
      Open.erase(E.Handle);
  }
  return Open.empty();
}

} // namespace

//===----------------------------------------------------------------------===//
// Generators — the structural facts behind the paper's clusters
//===----------------------------------------------------------------------===//

TEST(GeneratorTest, Deterministic) {
  Rng R1(99), R2(99);
  for (Category C : {Category::FlashIO, Category::RandomPosix,
                     Category::NormalIO, Category::RandomAccess})
    EXPECT_EQ(generateTrace(C, R1).events(), generateTrace(C, R2).events());
}

TEST(GeneratorTest, OnlyRandomPosixHasLseek) {
  Rng R(1);
  for (int Round = 0; Round < 10; ++Round) {
    EXPECT_TRUE(opNames(generateRandomPosix(R)).count("lseek"));
    EXPECT_FALSE(opNames(generateFlashIO(R)).count("lseek"));
    EXPECT_FALSE(opNames(generateNormalIO(R)).count("lseek"));
    EXPECT_FALSE(opNames(generateRandomAccess(R)).count("lseek"));
  }
}

TEST(GeneratorTest, FlashIOHasDiverseWriteSizes) {
  Rng R(2);
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = generateFlashIO(R);
    std::set<uint64_t> WriteSizes;
    for (const TraceEvent &E : T.events())
      if (E.Op == "write")
        WriteSizes.insert(E.Bytes);
    // "contiguous write operations with different byte values".
    EXPECT_GE(WriteSizes.size(), 4u);
  }
}

TEST(GeneratorTest, FlashIOIsMultiHandle) {
  Rng R(3);
  Trace T = generateFlashIO(R);
  EXPECT_GE(T.handles().size(), 2u);
}

TEST(GeneratorTest, NormalAndRandomAccessShareVocabulary) {
  // C and D must "share roughly the same pattern": same op names and
  // overlapping size pools.
  Rng R(4);
  std::set<uint64_t> SizesC, SizesD;
  std::set<std::string> NamesC, NamesD;
  for (int Round = 0; Round < 20; ++Round) {
    Trace C = generateNormalIO(R);
    for (const TraceEvent &E : C.events()) {
      NamesC.insert(E.Op);
      if (E.Bytes)
        SizesC.insert(E.Bytes);
    }
    Trace D = generateRandomAccess(R);
    for (const TraceEvent &E : D.events()) {
      NamesD.insert(E.Op);
      if (E.Bytes)
        SizesD.insert(E.Bytes);
    }
  }
  EXPECT_EQ(NamesC, NamesD);
  EXPECT_EQ(SizesC, SizesD);
}

TEST(GeneratorTest, AllTracesWellFormed) {
  Rng R(5);
  for (Category C : {Category::FlashIO, Category::RandomPosix,
                     Category::NormalIO, Category::RandomAccess}) {
    for (int Round = 0; Round < 5; ++Round) {
      Trace T = generateTrace(C, R);
      EXPECT_FALSE(T.empty());
      EXPECT_TRUE(openCloseBalanced(T)) << categoryName(C);
    }
  }
}

TEST(GeneratorTest, ScaleGrowsTraces) {
  Rng R1(6), R2(6);
  GeneratorConfig Small, Large;
  Large.Scale = 4;
  size_t SmallTotal = 0, LargeTotal = 0;
  for (int Round = 0; Round < 5; ++Round) {
    SmallTotal += generateNormalIO(R1, Small).size();
    LargeTotal += generateNormalIO(R2, Large).size();
  }
  EXPECT_GT(LargeTotal, 2 * SmallTotal);
}

TEST(GeneratorTest, CategoryNamesAndLabels) {
  EXPECT_STREQ(categoryLabel(Category::FlashIO), "A");
  EXPECT_STREQ(categoryLabel(Category::RandomPosix), "B");
  EXPECT_STREQ(categoryLabel(Category::NormalIO), "C");
  EXPECT_STREQ(categoryLabel(Category::RandomAccess), "D");
  EXPECT_STREQ(categoryName(Category::FlashIO), "flash-io");
}

//===----------------------------------------------------------------------===//
// Mutator
//===----------------------------------------------------------------------===//

TEST(MutatorTest, ProducesSmallChanges) {
  Rng R(7);
  Trace Base = generateNormalIO(R);
  for (int Round = 0; Round < 20; ++Round) {
    Trace Mutant = mutateTrace(Base, R);
    // Size changes by at most MaxMutations * MaxRunLength.
    size_t Diff = Mutant.size() > Base.size() ? Mutant.size() - Base.size()
                                              : Base.size() - Mutant.size();
    EXPECT_LE(Diff, 12u);
  }
}

TEST(MutatorTest, NeverIntroducesForeignOps) {
  Rng R(8);
  for (Category C : {Category::FlashIO, Category::NormalIO,
                     Category::RandomAccess}) {
    Trace Base = generateTrace(C, R);
    std::set<std::string> BaseNames = opNames(Base);
    for (int Round = 0; Round < 20; ++Round) {
      Trace Mutant = mutateTrace(Base, R);
      for (const std::string &Name : opNames(Mutant))
        EXPECT_TRUE(BaseNames.count(Name))
            << "mutation invented op " << Name;
    }
  }
}

TEST(MutatorTest, PreservesOpenCloseBalance) {
  Rng R(9);
  Trace Base = generateFlashIO(R);
  for (int Round = 0; Round < 20; ++Round)
    EXPECT_TRUE(openCloseBalanced(mutateTrace(Base, R)));
}

TEST(MutatorTest, DeterministicGivenRngState) {
  Trace Base = generateNormalIO(*std::make_unique<Rng>(10).get());
  Rng R1(11), R2(11);
  EXPECT_EQ(mutateTrace(Base, R1).events(), mutateTrace(Base, R2).events());
}

TEST(MutatorTest, UsuallyChangesTheTrace) {
  Rng R(12);
  Trace Base = generateRandomPosix(R);
  int Changed = 0;
  for (int Round = 0; Round < 20; ++Round)
    Changed += mutateTrace(Base, R).events() != Base.events();
  EXPECT_GE(Changed, 15);
}

//===----------------------------------------------------------------------===//
// Corpus builder — the 110-example shape of §4.1
//===----------------------------------------------------------------------===//

TEST(CorpusTest, PaperShape) {
  std::vector<LabeledTrace> Corpus = generateCorpus();
  EXPECT_EQ(Corpus.size(), 110u);
  std::map<std::string, size_t> Counts;
  for (const LabeledTrace &E : Corpus)
    ++Counts[E.Label];
  EXPECT_EQ(Counts["A"], 50u);
  EXPECT_EQ(Counts["B"], 20u);
  EXPECT_EQ(Counts["C"], 20u);
  EXPECT_EQ(Counts["D"], 20u);
  // 22 base examples.
  size_t Bases = 0;
  for (const LabeledTrace &E : Corpus)
    Bases += !E.IsMutant;
  EXPECT_EQ(Bases, 22u);
}

TEST(CorpusTest, DeterministicForSeed) {
  std::vector<LabeledTrace> C1 = generateCorpus();
  std::vector<LabeledTrace> C2 = generateCorpus();
  ASSERT_EQ(C1.size(), C2.size());
  for (size_t I = 0; I < C1.size(); ++I)
    EXPECT_EQ(C1[I].T.events(), C2[I].T.events());
}

TEST(CorpusTest, NamesEncodeLineage) {
  std::vector<LabeledTrace> Corpus = generateCorpus();
  EXPECT_EQ(Corpus[0].T.name(), "A0.0");
  EXPECT_EQ(Corpus[1].T.name(), "A0.1");
  EXPECT_EQ(Corpus[5].T.name(), "A1.0");
}

TEST(CorpusTest, CustomShape) {
  CorpusOptions Options;
  Options.BaseA = 1;
  Options.BaseB = 1;
  Options.BaseC = 0;
  Options.BaseD = 0;
  Options.CopiesPerBase = 2;
  std::vector<LabeledTrace> Corpus = generateCorpus(Options);
  EXPECT_EQ(Corpus.size(), 6u);
}

//===----------------------------------------------------------------------===//
// Corpus directory I/O
//===----------------------------------------------------------------------===//

TEST(CorpusIOTest, RoundTripsThroughDirectory) {
  CorpusOptions Options;
  Options.BaseA = 2;
  Options.BaseB = 1;
  Options.BaseC = 1;
  Options.BaseD = 1;
  Options.CopiesPerBase = 1;
  std::vector<LabeledTrace> Corpus = generateCorpus(Options);

  std::string Dir = testing::TempDir() + "/kast_corpus_rt";
  Status W = writeCorpusDirectory(Corpus, Dir);
  ASSERT_TRUE(W.ok()) << W.message();

  Expected<std::vector<LabeledTrace>> Loaded = loadCorpusDirectory(Dir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), Corpus.size());

  // Directory order is name-sorted; match by name.
  for (const LabeledTrace &Original : Corpus) {
    const LabeledTrace *Found = nullptr;
    for (const LabeledTrace &Candidate : *Loaded)
      if (Candidate.T.name() == Original.T.name())
        Found = &Candidate;
    ASSERT_NE(Found, nullptr) << Original.T.name();
    EXPECT_EQ(Found->T.events(), Original.T.events());
    EXPECT_EQ(Found->Label, Original.Label);
    EXPECT_EQ(Found->BaseIndex, Original.BaseIndex);
    EXPECT_EQ(Found->IsMutant, Original.IsMutant);
  }
}

TEST(CorpusIOTest, MissingDirectoryFails) {
  EXPECT_FALSE(loadCorpusDirectory("/nonexistent/kast/dir").hasValue());
}

TEST(CorpusIOTest, IgnoresForeignFiles) {
  std::string Dir = testing::TempDir() + "/kast_corpus_foreign";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Note(Dir + "/README.md");
    Note << "not a trace\n";
    std::ofstream T(Dir + "/X1.0.trace");
    T << "read 1 bytes=8\n";
  }
  Expected<std::vector<LabeledTrace>> Loaded = loadCorpusDirectory(Dir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), 1u);
  EXPECT_EQ((*Loaded)[0].Label, "X");
  EXPECT_FALSE((*Loaded)[0].IsMutant);
}

TEST(CorpusIOTest, LoadsInNumericLineageOrderNotLexicographic) {
  // With ten or more bases, lexicographic file-name order interleaves
  // lineages ("A10.0" < "A2.0"); the loader must order by numeric
  // (label, base, copy) so corpus order matches generation order.
  std::string Dir = testing::TempDir() + "/kast_corpus_order";
  std::filesystem::create_directories(Dir);
  std::vector<std::string> Names;
  for (size_t Base = 0; Base < 12; ++Base)
    for (size_t Copy = 0; Copy < 2; ++Copy)
      Names.push_back("A" + std::to_string(Base) + "." +
                      std::to_string(Copy));
  Names.push_back("B2.0");
  Names.push_back("B10.0"); // After B2.0 despite "B10" < "B2" lexically.
  for (const std::string &Name : Names) {
    std::ofstream T(Dir + "/" + Name + ".trace");
    T << "read 1 bytes=8\n";
  }

  Expected<std::vector<LabeledTrace>> Loaded = loadCorpusDirectory(Dir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), Names.size());
  // Names was built in lineage order already.
  for (size_t I = 0; I < Names.size(); ++I)
    EXPECT_EQ((*Loaded)[I].T.name(), Names[I]) << "position " << I;
  // The adversarial pairs, spelled out: base 2 precedes base 10.
  auto Position = [&](const std::string &Name) {
    for (size_t I = 0; I < Loaded->size(); ++I)
      if ((*Loaded)[I].T.name() == Name)
        return I;
    return Loaded->size();
  };
  EXPECT_LT(Position("A2.0"), Position("A10.0"));
  EXPECT_LT(Position("B2.0"), Position("B10.0"));
}

TEST(CorpusIOTest, ShardedProfileCachesRoundTrip) {
  // Three uneven shards of hand-built profiles round-trip through
  // "<dir>/shard-NNN.kpc" files with order, provenance and bit
  // patterns intact; kernel-name verification and hole detection are
  // hard errors.
  auto MakeCache = [](const std::string &Prefix, size_t Count) {
    ProfileStoreCache Cache;
    Cache.KernelName = "sharded-kernel";
    for (size_t I = 0; I < Count; ++I) {
      KernelProfile P;
      P.add(I * 17 + 3, 1.25 * static_cast<double>(I + 1));
      P.add(I * 17 + 9, -0.5);
      P.finalize();
      Cache.Store.append(P);
      Cache.Names.push_back(Prefix + std::to_string(I));
      Cache.Labels.push_back(Prefix);
    }
    return Cache;
  };
  std::vector<ProfileStoreCache> Shards;
  Shards.push_back(MakeCache("a", 3));
  Shards.push_back(MakeCache("b", 1));
  Shards.push_back(MakeCache("c", 5));

  std::string Dir = testing::TempDir() + "/kast_sharded_caches";
  std::filesystem::remove_all(Dir);
  Status W = writeShardedProfileCaches(Shards, Dir);
  ASSERT_TRUE(W.ok()) << W.message();

  Expected<std::vector<ProfileStoreCache>> Loaded =
      loadShardedProfileCaches(Dir, "sharded-kernel");
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), Shards.size());
  for (size_t S = 0; S < Shards.size(); ++S) {
    ASSERT_EQ((*Loaded)[S].Store.size(), Shards[S].Store.size());
    EXPECT_EQ((*Loaded)[S].Names, Shards[S].Names);
    EXPECT_EQ((*Loaded)[S].Labels, Shards[S].Labels);
    EXPECT_EQ((*Loaded)[S].Store.hashes(), Shards[S].Store.hashes());
    EXPECT_EQ((*Loaded)[S].Store.values(), Shards[S].Store.values());
    EXPECT_EQ((*Loaded)[S].Store.offsets(), Shards[S].Store.offsets());
  }

  // Wrong kernel name: load-time error naming the culprit.
  Expected<std::vector<ProfileStoreCache>> Bad =
      loadShardedProfileCaches(Dir, "other-kernel");
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.message().find("sharded-kernel"), std::string::npos)
      << Bad.message();

  // A hole in the shard numbering (partial corpus) is a hard error.
  std::filesystem::remove(Dir + "/shard-001.kpc");
  Expected<std::vector<ProfileStoreCache>> Holey =
      loadShardedProfileCaches(Dir, "sharded-kernel");
  ASSERT_FALSE(Holey.hasValue());
  EXPECT_NE(Holey.message().find("missing shard 1"), std::string::npos)
      << Holey.message();

  // An empty directory is "nothing to restore", not an empty service.
  std::string Empty = testing::TempDir() + "/kast_sharded_empty";
  std::filesystem::create_directories(Empty);
  EXPECT_FALSE(loadShardedProfileCaches(Empty).hasValue());

  // An empty shard list is refused outright — writing it would sweep
  // every existing shard file as stale and erase the previous
  // generation while reporting success.
  EXPECT_FALSE(writeShardedProfileCaches({}, Dir).ok());
  EXPECT_TRUE(std::filesystem::exists(Dir + "/shard-000.kpc"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/shard-002.kpc"));

  // A leftover ".kpc.tmp" staging file marks an interrupted save whose
  // .kpc neighbors may mix generations: the loader refuses the whole
  // directory, and a completed re-save sweeps the leftover and
  // unblocks it.
  { std::ofstream Tmp(Dir + "/shard-000.kpc.tmp"); Tmp << "partial"; }
  Expected<std::vector<ProfileStoreCache>> Interrupted =
      loadShardedProfileCaches(Dir, "sharded-kernel");
  ASSERT_FALSE(Interrupted.hasValue());
  EXPECT_NE(Interrupted.message().find("interrupted"), std::string::npos)
      << Interrupted.message();
  ASSERT_TRUE(writeShardedProfileCaches({MakeCache("z", 2)}, Dir).ok());
  EXPECT_FALSE(std::filesystem::exists(Dir + "/shard-000.kpc.tmp"));
  Expected<std::vector<ProfileStoreCache>> Swept =
      loadShardedProfileCaches(Dir, "sharded-kernel");
  ASSERT_TRUE(Swept.hasValue()) << Swept.message();
  EXPECT_EQ(Swept->size(), 1u);

  // Non-canonical spellings ("shard-7.kpc") never alias the writer's
  // padded names: the loader reports them instead of miscounting.
  { std::ofstream Alias(Dir + "/shard-7.kpc"); Alias << "alias"; }
  Expected<std::vector<ProfileStoreCache>> Aliased =
      loadShardedProfileCaches(Dir, "sharded-kernel");
  ASSERT_FALSE(Aliased.hasValue());
  EXPECT_NE(Aliased.message().find("shard-7.kpc"), std::string::npos)
      << Aliased.message();
}

TEST(CorpusIOTest, ShardedProfileImagesRoundTrip) {
  // The v3 flat-image sharded save ("<dir>/shard-NNN.kfi") shares the
  // .kpc writer's atomicity machinery: same numbering, same staging
  // rules, same contiguity check — but the loaded stores view their
  // file mappings.
  auto MakeCache = [](const std::string &Prefix, size_t Count) {
    ProfileStoreCache Cache;
    Cache.KernelName = "image-kernel";
    for (size_t I = 0; I < Count; ++I) {
      KernelProfile P;
      P.add(I * 17 + 3, 1.25 * static_cast<double>(I + 1));
      P.add(I * 17 + 9, -0.5);
      P.finalize();
      Cache.Store.append(P);
      Cache.Names.push_back(Prefix + std::to_string(I));
      Cache.Labels.push_back(Prefix);
    }
    return Cache;
  };
  std::vector<ProfileStoreCache> Shards;
  Shards.push_back(MakeCache("a", 4));
  Shards.push_back(MakeCache("b", 2));

  std::string Dir = testing::TempDir() + "/kast_sharded_images";
  std::filesystem::remove_all(Dir);
  Status W = writeShardedProfileImages(Shards, Dir);
  ASSERT_TRUE(W.ok()) << W.message();
  EXPECT_TRUE(std::filesystem::exists(Dir + "/shard-000.kfi"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/shard-001.kfi"));

  Expected<std::vector<ProfileStoreCache>> Loaded =
      loadShardedProfileImages(Dir, "image-kernel");
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), Shards.size());
  for (size_t S = 0; S < Shards.size(); ++S) {
    EXPECT_TRUE((*Loaded)[S].Store.isMapped());
    ASSERT_EQ((*Loaded)[S].Store.size(), Shards[S].Store.size());
    EXPECT_EQ((*Loaded)[S].Names, Shards[S].Names);
    EXPECT_EQ((*Loaded)[S].Labels, Shards[S].Labels);
    EXPECT_EQ((*Loaded)[S].Store.hashes(), Shards[S].Store.hashes());
    EXPECT_EQ((*Loaded)[S].Store.values(), Shards[S].Store.values());
    EXPECT_EQ((*Loaded)[S].Store.offsets(), Shards[S].Store.offsets());
  }

  // Same hole detection as the .kpc loader...
  std::filesystem::remove(Dir + "/shard-000.kfi");
  Expected<std::vector<ProfileStoreCache>> Holey =
      loadShardedProfileImages(Dir, "image-kernel");
  ASSERT_FALSE(Holey.hasValue());
  EXPECT_NE(Holey.message().find("missing shard 0"), std::string::npos)
      << Holey.message();

  // ...and the same staging-leftover refusal, on the .kfi extension.
  ASSERT_TRUE(writeShardedProfileImages(Shards, Dir).ok());
  { std::ofstream Tmp(Dir + "/shard-001.kfi.tmp"); Tmp << "partial"; }
  Expected<std::vector<ProfileStoreCache>> Interrupted =
      loadShardedProfileImages(Dir, "image-kernel");
  ASSERT_FALSE(Interrupted.hasValue());
  EXPECT_NE(Interrupted.message().find("interrupted"), std::string::npos)
      << Interrupted.message();
  ASSERT_TRUE(writeShardedProfileImages(Shards, Dir).ok());
  EXPECT_FALSE(std::filesystem::exists(Dir + "/shard-001.kfi.tmp"));

  // The two sharded formats live in separate namespaces: a .kpc save
  // into the same directory does not disturb the images, and each
  // loader sees only its own extension.
  ASSERT_TRUE(writeShardedProfileCaches(Shards, Dir).ok());
  Expected<std::vector<ProfileStoreCache>> StillThere =
      loadShardedProfileImages(Dir, "image-kernel");
  ASSERT_TRUE(StillThere.hasValue()) << StillThere.message();
  EXPECT_EQ(StillThere->size(), Shards.size());
}

TEST(CorpusIOTest, MalformedNamesAreDiagnosedErrors) {
  // Each offending file goes in its own directory because loading
  // stops at the first error.
  struct Case {
    const char *File;
    const char *ExpectInMessage;
  };
  const Case Cases[] = {
      {"1A.0.trace", "label"},       // No alphabetic prefix.
      {"A.trace", "suffix"},         // No '.<copy>' part at all.
      {"A.0.trace", "base"},         // Label but no base index.
      {"A1.x.trace", "copy"},        // Copy part is not a number.
      {"unnamed.trace", "suffix"},   // Bare word, no lineage.
  };
  for (const Case &C : Cases) {
    std::string Dir =
        testing::TempDir() + "/kast_corpus_bad_" + std::string(1, C.File[0]) +
        std::to_string(&C - Cases);
    std::filesystem::create_directories(Dir);
    {
      std::ofstream T(Dir + "/" + C.File);
      T << "read 1 bytes=8\n";
    }
    Expected<std::vector<LabeledTrace>> Loaded = loadCorpusDirectory(Dir);
    ASSERT_FALSE(Loaded.hasValue()) << C.File;
    EXPECT_NE(Loaded.message().find("malformed trace name"),
              std::string::npos)
        << C.File << ": " << Loaded.message();
    EXPECT_NE(Loaded.message().find(C.ExpectInMessage), std::string::npos)
        << C.File << ": " << Loaded.message();
  }
}

TEST(CorpusIOTest, MultiLetterLabelsAndLineageParse) {
  std::string Dir = testing::TempDir() + "/kast_corpus_multiletter";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream T(Dir + "/AB12.3.trace");
    T << "read 1 bytes=8\n";
  }
  Expected<std::vector<LabeledTrace>> Loaded = loadCorpusDirectory(Dir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), 1u);
  EXPECT_EQ((*Loaded)[0].Label, "AB");
  EXPECT_EQ((*Loaded)[0].BaseIndex, 12u);
  EXPECT_TRUE((*Loaded)[0].IsMutant);
}

TEST(CorpusTest, ConversionSharesOneTable) {
  CorpusOptions Options;
  Options.BaseA = 2;
  Options.BaseB = 1;
  Options.BaseC = 1;
  Options.BaseD = 1;
  Options.CopiesPerBase = 1;
  std::vector<LabeledTrace> Corpus = generateCorpus(Options);
  Pipeline P;
  LabeledDataset Data = convertCorpus(P, Corpus);
  ASSERT_EQ(Data.size(), Corpus.size());
  for (size_t I = 1; I < Data.size(); ++I)
    EXPECT_EQ(Data.string(I).table().get(), Data.string(0).table().get());
  // Names carried over.
  EXPECT_EQ(Data.string(0).name(), "A0.0");
}
