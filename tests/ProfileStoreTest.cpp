//===- tests/ProfileStoreTest.cpp - arena storage and v2 cache -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The structure-of-arrays storage contract: profiles copied into a
// ProfileStore come back bit-exactly (views, materialized staging
// copies, and every pairwise dot), the Gram fast path over store views
// matches the per-pair baseline across tile boundaries, and the v2
// block cache format round-trips stores bit-exactly while remaining
// interchangeable with v1 files in both directions.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "core/ProfileSerializer.h"
#include "core/ProfileStore.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R, size_t N) {
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < N; ++I) {
    WeightedString S = randomString(Table, R, R.uniformInt(1, 32), 6);
    S.setName("s" + std::to_string(I));
    Corpus.push_back(std::move(S));
  }
  return Corpus;
}

void expectBitExact(const KernelProfile &A, const KernelProfile &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.entries()[I].Hash, B.entries()[I].Hash);
    EXPECT_EQ(std::bit_cast<uint64_t>(A.entries()[I].Value),
              std::bit_cast<uint64_t>(B.entries()[I].Value))
        << "entry " << I;
  }
}

//===----------------------------------------------------------------------===//
// Arena append, views, dots
//===----------------------------------------------------------------------===//

TEST(ProfileStoreTest, ViewsAndDotsMatchStagingProfilesBitExactly) {
  Rng R(10110);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 24);
  BlendedSpectrumKernel Kernel(3, 0.9, /*Weighted=*/true, /*CutWeight=*/2);

  std::vector<KernelProfile> Staged;
  ProfileStore Store;
  for (const WeightedString &S : Corpus) {
    Staged.push_back(Kernel.profile(S));
    EXPECT_EQ(Store.append(Staged.back()), Staged.size() - 1);
  }
  ASSERT_EQ(Store.size(), Corpus.size());
  EXPECT_TRUE(Store.isFinalized());

  size_t TotalEntries = 0;
  for (size_t I = 0; I < Staged.size(); ++I) {
    const ProfileView V = Store.view(I);
    ASSERT_EQ(V.Size, Staged[I].size());
    for (size_t E = 0; E < V.Size; ++E) {
      EXPECT_EQ(V.Hashes[E], Staged[I].entries()[E].Hash);
      EXPECT_EQ(std::bit_cast<uint64_t>(V.Values[E]),
                std::bit_cast<uint64_t>(Staged[I].entries()[E].Value));
    }
    // Cached self-dot and norm agree with the merge-join ground truth.
    EXPECT_EQ(std::bit_cast<uint64_t>(V.SelfDot),
              std::bit_cast<uint64_t>(Staged[I].dot(Staged[I])));
    EXPECT_DOUBLE_EQ(V.Norm, std::sqrt(V.SelfDot));
    EXPECT_EQ(Store.selfDot(I), V.SelfDot);
    EXPECT_EQ(Store.norm(I), V.Norm);
    // Materialized staging copies are bit-exact.
    expectBitExact(Store.materialize(I), Staged[I]);
    TotalEntries += V.Size;
  }
  EXPECT_EQ(Store.entryCount(), TotalEntries);

  // Every pairwise dot — view×view and view×staging — is bit-identical
  // to the staging-type merge join.
  for (size_t I = 0; I < Staged.size(); ++I)
    for (size_t J = 0; J < Staged.size(); ++J) {
      double Truth = Staged[I].dot(Staged[J]);
      EXPECT_EQ(std::bit_cast<uint64_t>(dot(Store.view(I), Store.view(J))),
                std::bit_cast<uint64_t>(Truth))
          << I << "," << J;
      EXPECT_EQ(std::bit_cast<uint64_t>(dot(Store.view(I), Staged[J])),
                std::bit_cast<uint64_t>(Truth))
          << I << "," << J;
    }
}

TEST(ProfileStoreTest, AppendFromCopiesArenaToArenaBitExactly) {
  Rng R(20220);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 12);
  BlendedSpectrumKernel Kernel(3, 0.9, /*Weighted=*/true, /*CutWeight=*/2);

  ProfileStore Source;
  for (const WeightedString &S : Corpus)
    Source.append(Kernel.profile(S));

  // Copy every other profile, out of order, into a fresh arena — the
  // shape of a tombstone-dropping compaction — and check bit patterns
  // plus the carried-over self-dot/norm caches.
  ProfileStore Rebuilt;
  std::vector<size_t> Picks = {9, 1, 5, 3, 7};
  for (size_t P = 0; P < Picks.size(); ++P)
    EXPECT_EQ(Rebuilt.appendFrom(Source, Picks[P]), P);
  ASSERT_EQ(Rebuilt.size(), Picks.size());
  EXPECT_TRUE(Rebuilt.isFinalized());
  for (size_t P = 0; P < Picks.size(); ++P) {
    const ProfileView From = Source.view(Picks[P]);
    const ProfileView To = Rebuilt.view(P);
    ASSERT_EQ(To.Size, From.Size);
    for (size_t E = 0; E < To.Size; ++E) {
      EXPECT_EQ(To.Hashes[E], From.Hashes[E]);
      EXPECT_EQ(std::bit_cast<uint64_t>(To.Values[E]),
                std::bit_cast<uint64_t>(From.Values[E]));
    }
    EXPECT_EQ(std::bit_cast<uint64_t>(To.SelfDot),
              std::bit_cast<uint64_t>(From.SelfDot));
    EXPECT_EQ(std::bit_cast<uint64_t>(To.Norm),
              std::bit_cast<uint64_t>(From.Norm));
  }
}

TEST(ProfileStoreTest, EmptyProfilesTakeZeroArenaSpace) {
  ProfileStore Store;
  KernelProfile NonEmpty;
  NonEmpty.add(7, 2.0);
  NonEmpty.finalize();

  Store.append(KernelProfile());
  Store.append(NonEmpty);
  Store.append(KernelProfile());

  ASSERT_EQ(Store.size(), 3u);
  EXPECT_EQ(Store.entryCount(), 1u);
  EXPECT_TRUE(Store.view(0).empty());
  EXPECT_TRUE(Store.view(2).empty());
  EXPECT_EQ(Store.view(0).Norm, 0.0);
  EXPECT_EQ(Store.view(1).Size, 1u);
  EXPECT_DOUBLE_EQ(Store.view(1).SelfDot, 4.0);
  EXPECT_EQ(dot(Store.view(0), Store.view(1)), 0.0);
  EXPECT_TRUE(Store.materialize(0).empty());
}

TEST(ProfileStoreTest, AdoptRebuildsNormsAndValidates) {
  // Two profiles: {(1, 3.0), (5, 4.0)} and {(2, 1.0)}.
  ProfileStore Store = ProfileStore::adopt({1, 5, 2}, {3.0, 4.0, 1.0},
                                           {0, 2, 3});
  ASSERT_EQ(Store.size(), 2u);
  EXPECT_TRUE(Store.isFinalized());
  EXPECT_DOUBLE_EQ(Store.selfDot(0), 25.0);
  EXPECT_DOUBLE_EQ(Store.norm(0), 5.0);
  EXPECT_DOUBLE_EQ(Store.selfDot(1), 1.0);

  // Unsorted (or duplicated) hashes within one profile break the
  // finalize() invariant the dot kernels rely on.
  EXPECT_FALSE(
      ProfileStore::adopt({5, 1}, {1.0, 1.0}, {0, 2}).isFinalized());
  EXPECT_FALSE(
      ProfileStore::adopt({3, 3}, {1.0, 1.0}, {0, 2}).isFinalized());
}

//===----------------------------------------------------------------------===//
// Tiled Gram fill over the store (KernelMatrix fast path)
//===----------------------------------------------------------------------===//

TEST(ProfileStoreTest, TiledGramMatchesPerPairBaselineAcrossTileEdges) {
  Rng R(646465);
  auto Table = TokenTable::create();
  // 70 + 70 rows: the initial build and the appended block both
  // straddle the 64-row tile edge, so partial edge tiles, full tiles,
  // and the rectangle/triangle split all get exercised.
  std::vector<WeightedString> Base = randomCorpus(Table, R, 70);
  std::vector<WeightedString> Extra = randomCorpus(Table, R, 70);
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);

  KernelMatrixOptions Options;
  Options.Threads = 0; // Exercise the parallel tile fill.
  KernelMatrix Gram(Kernel, Options);
  Gram.appendRows(Base);
  ASSERT_NE(Gram.profileStore(), nullptr);
  EXPECT_EQ(Gram.profileStore()->size(), Base.size());
  Gram.appendRows(Extra);
  EXPECT_EQ(Gram.profileStore()->size(), Base.size() + Extra.size());

  std::vector<WeightedString> All = Base;
  All.insert(All.end(), Extra.begin(), Extra.end());
  KernelMatrixOptions Baseline = Options;
  Baseline.UsePrecompute = false; // Per-pair evaluate(), no store.
  Matrix Truth = computeKernelMatrix(Kernel, All, Baseline);

  Matrix Tiled = Gram.materialize();
  ASSERT_EQ(Tiled.rows(), Truth.rows());
  for (size_t I = 0; I < Truth.rows(); ++I)
    for (size_t J = 0; J < Truth.cols(); ++J)
      EXPECT_NEAR(Tiled.at(I, J), Truth.at(I, J),
                  1e-12 * std::max(1.0, std::fabs(Truth.at(I, J))))
          << "(" << I << ", " << J << ")";
}

TEST(ProfileStoreTest, NonProfiledKernelsKeepTheHandlePath) {
  auto Table = TokenTable::create();
  Rng R(11);
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 4);
  BlendedSpectrumKernel Profiled(2);
  KernelMatrixOptions NoPrecompute;
  NoPrecompute.UsePrecompute = false;
  // UsePrecompute off: even a profiled kernel takes the handle path.
  KernelMatrix Off(Profiled, NoPrecompute);
  Off.appendRows(Corpus);
  EXPECT_EQ(Off.profileStore(), nullptr);
  // On: the arena backs the fast path.
  KernelMatrix On(Profiled, {});
  On.appendRows(Corpus);
  EXPECT_NE(On.profileStore(), nullptr);
}

//===----------------------------------------------------------------------===//
// v2 block cache format
//===----------------------------------------------------------------------===//

ProfileStoreCache makeStoreCache(Rng &R, size_t N,
                                 const std::string &KernelName) {
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, N);
  BlendedSpectrumKernel Kernel(3, 0.8, /*Weighted=*/true, /*CutWeight=*/2);
  ProfileStoreCache Cache;
  Cache.KernelName = KernelName;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    Cache.Names.push_back(Corpus[I].name());
    Cache.Labels.push_back(I % 2 ? "odd" : "even");
    Cache.Store.append(Kernel.profile(Corpus[I]));
  }
  return Cache;
}

TEST(ProfileStoreCacheTest, V2RoundTripsStoresBitExactly) {
  Rng R(20202);
  ProfileStoreCache Cache = makeStoreCache(R, 17, "blended");

  std::stringstream Buffer;
  ASSERT_TRUE(writeProfileStoreCache(Cache, Buffer).ok());
  Expected<ProfileStoreCache> Loaded = readProfileStoreCache(Buffer);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();

  EXPECT_EQ(Loaded->KernelName, "blended");
  ASSERT_EQ(Loaded->Store.size(), Cache.Store.size());
  EXPECT_EQ(Loaded->Names, Cache.Names);
  EXPECT_EQ(Loaded->Labels, Cache.Labels);
  // The three arrays survive byte-for-byte: hashes, value bit
  // patterns, offsets — and therefore norms and every dot.
  EXPECT_EQ(Loaded->Store.hashes(), Cache.Store.hashes());
  EXPECT_EQ(Loaded->Store.offsets(), Cache.Store.offsets());
  ASSERT_EQ(Loaded->Store.values().size(), Cache.Store.values().size());
  for (size_t I = 0; I < Cache.Store.values().size(); ++I)
    EXPECT_EQ(std::bit_cast<uint64_t>(Loaded->Store.values()[I]),
              std::bit_cast<uint64_t>(Cache.Store.values()[I]));
  for (size_t I = 0; I < Cache.Store.size(); ++I)
    EXPECT_EQ(std::bit_cast<uint64_t>(Loaded->Store.norm(I)),
              std::bit_cast<uint64_t>(Cache.Store.norm(I)));
}

TEST(ProfileStoreCacheTest, V1AndV2LoadInterchangeably) {
  Rng R(30303);
  ProfileStoreCache StoreCache = makeStoreCache(R, 9, "k");

  // The same collection in both formats.
  std::stringstream V2;
  ASSERT_TRUE(writeProfileStoreCache(StoreCache, V2).ok());
  ProfileCache Records;
  Records.KernelName = StoreCache.KernelName;
  for (size_t I = 0; I < StoreCache.Store.size(); ++I)
    Records.Records.push_back({StoreCache.Names.str(I),
                               StoreCache.Labels.str(I),
                               StoreCache.Store.materialize(I)});
  std::stringstream V1;
  ASSERT_TRUE(writeProfileCache(Records, V1).ok());

  // v1 bytes into a store (the upgrade path)...
  Expected<ProfileStoreCache> V1AsStore = readProfileStoreCache(V1);
  ASSERT_TRUE(V1AsStore.hasValue()) << V1AsStore.message();
  EXPECT_EQ(V1AsStore->Store.hashes(), StoreCache.Store.hashes());
  EXPECT_EQ(V1AsStore->Store.offsets(), StoreCache.Store.offsets());
  EXPECT_EQ(V1AsStore->Names, StoreCache.Names);

  // ...and v2 bytes into records (the downgrade path); both agree
  // with the originals bit-exactly.
  Expected<ProfileCache> V2AsRecords = readProfileCache(V2);
  ASSERT_TRUE(V2AsRecords.hasValue()) << V2AsRecords.message();
  ASSERT_EQ(V2AsRecords->Records.size(), Records.Records.size());
  for (size_t I = 0; I < Records.Records.size(); ++I) {
    EXPECT_EQ(V2AsRecords->Records[I].Name, Records.Records[I].Name);
    EXPECT_EQ(V2AsRecords->Records[I].Label, Records.Records[I].Label);
    expectBitExact(V2AsRecords->Records[I].Profile,
                   Records.Records[I].Profile);
  }
}

TEST(ProfileStoreCacheTest, RejectsBadMagicTruncationAndCorruptOffsets) {
  Rng R(40404);
  ProfileStoreCache Cache = makeStoreCache(R, 5, "k");
  std::stringstream Good;
  ASSERT_TRUE(writeProfileStoreCache(Cache, Good).ok());
  std::string Bytes = Good.str();

  {
    std::string Bad = Bytes;
    Bad[0] = 'X';
    std::stringstream In(Bad);
    Expected<ProfileStoreCache> E = readProfileStoreCache(In);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("magic"), std::string::npos) << E.message();
  }
  {
    std::string Bad = Bytes;
    Bad[8] = 99; // Version field (little-endian low byte).
    std::stringstream In(Bad);
    Expected<ProfileStoreCache> E = readProfileStoreCache(In);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("version"), std::string::npos) << E.message();
  }
  // Truncation anywhere — inside the header, the name table, the
  // offset array, or the value blob — is a diagnostic, not garbage.
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() - 9,
                     Bytes.size() / 2, size_t(30), size_t(10)}) {
    std::stringstream In(Bytes.substr(0, Cut));
    Expected<ProfileStoreCache> E = readProfileStoreCache(In);
    EXPECT_FALSE(E.hasValue()) << "cut at " << Cut;
  }

  // An entry total inconsistent with the offsets is rejected before
  // any profile is served. The total lives right after the profile
  // count: magic(8) + version(4) + kernel "k"(4 + 1) + count(8).
  {
    std::string Bad = Bytes;
    const size_t TotalOffset = 8 + 4 + 4 + 1 + 8;
    Bad[TotalOffset] = static_cast<char>(Bad[TotalOffset] + 1);
    std::stringstream In(Bad);
    Expected<ProfileStoreCache> E = readProfileStoreCache(In);
    ASSERT_FALSE(E.hasValue());
  }
}

TEST(ProfileStoreCacheTest, CorruptOffsetsDiagnoseBeforeEntryAdoption) {
  // A tiny store with known arrays so the CSR offsets {0, 2, 3} have a
  // unique 24-byte encoding in the v2 file (the hashes are huge, the
  // value bit patterns unrelated).
  ProfileStoreCache Cache;
  Cache.KernelName = "k";
  Cache.Names = std::vector<std::string>{"a", "b"};
  Cache.Labels = std::vector<std::string>{"", ""};
  Cache.Store = ProfileStore::adopt({0x1111111111111111ULL,
                                     0x2222222222222222ULL,
                                     0x3333333333333333ULL},
                                    {3.0, 4.0, 1.0}, {0, 2, 3});
  std::stringstream Good;
  ASSERT_TRUE(writeProfileStoreCache(Cache, Good).ok());
  std::string Bytes = Good.str();

  // Locate the offsets blob by its unique byte pattern and break
  // monotonicity: {0, 2, 3} -> {0, 7, 3}.
  std::string Pattern(24, '\0');
  Pattern[8] = 2;
  Pattern[16] = 3;
  const size_t At = Bytes.find(Pattern);
  ASSERT_NE(At, std::string::npos);
  ASSERT_EQ(Bytes.find(Pattern, At + 1), std::string::npos);
  std::string Bad = Bytes;
  Bad[At + 8] = 7;

  // The pre-adoption CSR validation (validateCsrOffsets, shared with
  // the v3 flat-image reader) rejects the file with a diagnostic
  // naming the offsets, before any entry blob is served.
  std::stringstream In(Bad);
  Expected<ProfileStoreCache> E = readProfileStoreCache(In);
  ASSERT_FALSE(E.hasValue());
  EXPECT_NE(E.message().find("offsets"), std::string::npos) << E.message();
  EXPECT_NE(E.message().find("monotonic"), std::string::npos) << E.message();
}

TEST(ProfileStoreCacheTest, FileRoundTripAndWriterValidation) {
  Rng R(50505);
  ProfileStoreCache Cache = makeStoreCache(R, 6, "k");
  std::string Path = testing::TempDir() + "/kast_store_rt.kpc";
  ASSERT_TRUE(writeProfileStoreCacheFile(Cache, Path).ok());
  Expected<ProfileStoreCache> Loaded = readProfileStoreCacheFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->Store.hashes(), Cache.Store.hashes());

  // A cache whose name/label tables disagree with the store is a
  // writer-side error, not a corrupt file.
  Cache.Names.pop_back();
  std::stringstream Out;
  Status S = writeProfileStoreCache(Cache, Out);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("names"), std::string::npos) << S.message();
}

} // namespace
