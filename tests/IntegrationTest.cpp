//===- tests/IntegrationTest.cpp - end-to-end paper claims -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-pipeline tests asserting the qualitative outcomes of the
/// paper's evaluation (§4.2-4.3) on the synthetic corpus:
///
///  * Kast kernel + byte info + small cut weight: the 3-cluster cut is
///    exactly {A}, {B}, {C u D} with no misplaced examples (Figs. 6-7);
///  * Kast kernel without byte info at small cut: B separates, A/C/D
///    merge (§4.2);
///  * Blended kernel + byte info: only A separates (Figs. 8-9);
///  * mutated copies stay nearest their own category (§4.1).
///
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "kernels/SpectrumKernels.h"
#include "linalg/Eigen.h"
#include "ml/ClusterMetrics.h"
#include "ml/HierarchicalClustering.h"
#include "ml/KernelPca.h"
#include "workloads/DatasetBuilder.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

/// Shared corpus fixture: traces generated once per process.
class PaperEvaluation : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Corpus = new std::vector<LabeledTrace>(generateCorpus());
    WithBytes = new LabeledDataset(
        convertCorpus(Pipeline::withBytes(), *Corpus));
    NoBytes = new LabeledDataset(
        convertCorpus(Pipeline::withoutBytes(), *Corpus));
  }
  static void TearDownTestSuite() {
    delete Corpus;
    delete WithBytes;
    delete NoBytes;
    Corpus = nullptr;
    WithBytes = nullptr;
    NoBytes = nullptr;
  }

  /// Normalized Gram matrix of \p Kernel over \p Data.
  static Matrix gram(const StringKernel &Kernel,
                     const LabeledDataset &Data) {
    KernelMatrixOptions Options;
    Options.Normalize = true;
    return computeKernelMatrix(Kernel, Data.strings(), Options);
  }

  /// Flat clustering of the normalized Gram matrix, single linkage.
  static std::vector<size_t> clusterCut(const Matrix &K, size_t NumC) {
    Dendrogram D = clusterHierarchical(similarityToDistance(K));
    return D.cutToClusters(NumC);
  }

  static std::vector<LabeledTrace> *Corpus;
  static LabeledDataset *WithBytes;
  static LabeledDataset *NoBytes;
};

std::vector<LabeledTrace> *PaperEvaluation::Corpus = nullptr;
LabeledDataset *PaperEvaluation::WithBytes = nullptr;
LabeledDataset *PaperEvaluation::NoBytes = nullptr;

} // namespace

//===----------------------------------------------------------------------===//
// Figures 6-7: Kast kernel, byte information, cut weight 2
//===----------------------------------------------------------------------===//

TEST_F(PaperEvaluation, KastWithBytesSeparatesABandMergesCD) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = gram(Kernel, *WithBytes);
  std::vector<size_t> Flat = clusterCut(K, 3);
  // "both learning algorithms clearly separated the same 3 clusters"
  // with "not misplaced examples on any of the groups".
  EXPECT_TRUE(matchesGrouping(Flat, WithBytes->labels(),
                              {{"A"}, {"B"}, {"C", "D"}}))
      << "purity=" << purity(Flat, WithBytes->labels());
  EXPECT_EQ(
      misplacedCount(Flat, WithBytes->labels(), {{"A"}, {"B"}, {"C", "D"}}),
      0u);
}

TEST_F(PaperEvaluation, KastWithBytesKernelPcaSeparatesGroups) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = gram(Kernel, *WithBytes);
  KernelPcaResult Pca = kernelPca(projectToPsd(K), 2);
  ASSERT_GE(Pca.Projections.cols(), 2u);
  // Verify geometric separation: every A is closer to the A centroid
  // than to the B centroid and vice versa.
  auto Centroid = [&](const std::string &Label) {
    double X = 0, Y = 0;
    std::vector<size_t> Idx = WithBytes->indicesOf(Label);
    for (size_t I : Idx) {
      X += Pca.Projections.at(I, 0);
      Y += Pca.Projections.at(I, 1);
    }
    return std::make_pair(X / Idx.size(), Y / Idx.size());
  };
  auto [Ax, Ay] = Centroid("A");
  auto [Bx, By] = Centroid("B");
  size_t Correct = 0, Total = 0;
  for (const char *Label : {"A", "B"}) {
    for (size_t I : WithBytes->indicesOf(Label)) {
      double X = Pca.Projections.at(I, 0);
      double Y = Pca.Projections.at(I, 1);
      double Da = (X - Ax) * (X - Ax) + (Y - Ay) * (Y - Ay);
      double Db = (X - Bx) * (X - Bx) + (Y - By) * (Y - By);
      Correct += std::string(Label) == "A" ? Da < Db : Db < Da;
      ++Total;
    }
  }
  EXPECT_EQ(Correct, Total);
}

//===----------------------------------------------------------------------===//
// §4.2: Kast kernel without byte information
//===----------------------------------------------------------------------===//

TEST_F(PaperEvaluation, KastNoBytesSeparatesOnlyBAtSmallCut) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = gram(Kernel, *NoBytes);
  std::vector<size_t> Flat = clusterCut(K, 2);
  // "Random POSIX I/O (B) was the only group independently separated,
  // while Flash I/O, Normal I/O and Random Access I/O (A-C-D)
  // conformed a second group."
  EXPECT_TRUE(matchesGrouping(Flat, NoBytes->labels(),
                              {{"B"}, {"A", "C", "D"}}))
      << "purity=" << purity(Flat, NoBytes->labels());
}

//===----------------------------------------------------------------------===//
// Figures 8-9: Blended spectrum kernel, byte information
//===----------------------------------------------------------------------===//

TEST_F(PaperEvaluation, BlendedWithBytesSeparatesOnlyA) {
  // The paper gives no blended parameters; k = 3 with a mild long-gram
  // emphasis (lambda = 1.25) is the baseline's best configuration on
  // this corpus — and it lands exactly on the paper's outcome (see
  // EXPERIMENTS.md).
  BlendedSpectrumKernel Kernel(/*K=*/3, /*Lambda=*/1.25);
  Matrix K = gram(Kernel, *WithBytes);
  std::vector<size_t> Flat = clusterCut(K, 2);
  // "only Flash I/O (A) examples were independently separated, while
  // ... (B-C-D) conformed a single group."
  EXPECT_TRUE(matchesGrouping(Flat, WithBytes->labels(),
                              {{"A"}, {"B", "C", "D"}}))
      << "purity=" << purity(Flat, WithBytes->labels());
}

TEST_F(PaperEvaluation, BlendedDoesNotRecoverThreeGroups) {
  // The blended baseline must be strictly weaker than Kast here: its
  // 3-cut does not realize {A},{B},{C u D}.
  BlendedSpectrumKernel Kernel(3, 1.25);
  Matrix K = gram(Kernel, *WithBytes);
  std::vector<size_t> Flat = clusterCut(K, 3);
  EXPECT_FALSE(matchesGrouping(Flat, WithBytes->labels(),
                               {{"A"}, {"B"}, {"C", "D"}}));
}

//===----------------------------------------------------------------------===//
// §4.1: mutated copies stay close to their originals
//===----------------------------------------------------------------------===//

TEST_F(PaperEvaluation, MutantsNearestNeighborSharesGroup) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = gram(Kernel, *WithBytes);
  // C and D form one ground-truth group ("shared roughly the same
  // pattern"); nearest-neighbor agreement is measured at group level.
  auto Group = [](const std::string &Label) {
    return Label == "D" ? std::string("C") : Label;
  };
  size_t Correct = 0;
  for (size_t I = 0; I < WithBytes->size(); ++I) {
    size_t Best = I;
    double BestSim = -1.0;
    for (size_t J = 0; J < WithBytes->size(); ++J) {
      if (J == I)
        continue;
      if (K.at(I, J) > BestSim) {
        BestSim = K.at(I, J);
        Best = J;
      }
    }
    Correct += Group(WithBytes->label(I)) == Group(WithBytes->label(Best));
  }
  // Nearest neighbor classification over the Kast similarity must be
  // perfect at group granularity on this corpus.
  EXPECT_EQ(Correct, WithBytes->size());
}

//===----------------------------------------------------------------------===//
// Matrix post-processing invariants on the real corpus
//===----------------------------------------------------------------------===//

TEST_F(PaperEvaluation, NormalizedGramHasUnitDiagonal) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = gram(Kernel, *WithBytes);
  EXPECT_TRUE(K.isSymmetric(1e-9));
  for (size_t I = 0; I < K.rows(); ++I)
    EXPECT_DOUBLE_EQ(K.at(I, I), 1.0);
}

TEST_F(PaperEvaluation, PsdRepairPreservesClustering) {
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Normalize = true;
  Options.RepairPsd = true;
  Matrix K =
      computeKernelMatrix(Kernel, WithBytes->strings(), Options);
  EXPECT_GE(minEigenvalue(K), -1e-8);
  std::vector<size_t> Flat = clusterCut(K, 3);
  EXPECT_TRUE(matchesGrouping(Flat, WithBytes->labels(),
                              {{"A"}, {"B"}, {"C", "D"}}));
}
