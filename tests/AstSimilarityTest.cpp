//===- tests/AstSimilarityTest.cpp - code comparison via Kast kernel -------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work direction exercised end to end: Mini
/// programs -> ASTs -> weighted strings -> Kast Spectrum Kernel, with
/// clone-detection style assertions (exact clones, renamed clones,
/// restructured code, unrelated code).
///
//===----------------------------------------------------------------------===//

#include "ast/AstEncoder.h"
#include "ast/Parser.h"
#include "core/KastKernel.h"
#include "kernels/SpectrumKernels.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

const char *GcdIterative = R"(
fn gcd(a, b) {
  while (b != 0) {
    let t = b;
    b = a % b;
    a = t;
  }
  return a;
}
)";

/// The same algorithm with every identifier renamed.
const char *GcdRenamed = R"(
fn greatest(x, y) {
  while (y != 0) {
    let keep = y;
    y = x % y;
    x = keep;
  }
  return x;
}
)";

/// Still gcd, but recursive: same task, different shape.
const char *GcdRecursive = R"(
fn gcd(a, b) {
  if (b == 0) {
    return a;
  }
  return gcd(b, a % b);
}
)";

/// Structurally unrelated: nested summation loops.
const char *SumOfProducts = R"(
fn sum(n, m) {
  let total = 0;
  let i = 0;
  while (i < n) {
    let j = 0;
    while (j < m) {
      total = total + i * j;
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
)";

/// Fixture providing a shared table/kernel and an encode helper.
class CodeSimilarity : public ::testing::Test {
protected:
  WeightedString encode(const char *Source,
                        const AstEncodeOptions &Options = {}) {
    Expected<Ast> Tree = parseProgram(Source);
    EXPECT_TRUE(Tree.hasValue()) << Tree.message();
    return encodeAst(*Tree, Table, Options);
  }

  double similarity(const char *A, const char *B,
                    const AstEncodeOptions &Options = {}) {
    KastSpectrumKernel Kernel({/*CutWeight=*/2});
    return Kernel.evaluateNormalized(encode(A, Options),
                                     encode(B, Options));
  }

  std::shared_ptr<TokenTable> Table = TokenTable::create();
};

} // namespace

TEST_F(CodeSimilarity, ExactCloneIsIdentical) {
  EXPECT_NEAR(similarity(GcdIterative, GcdIterative), 1.0, 1e-12);
}

TEST_F(CodeSimilarity, RenamedCloneIsIdenticalUnderAbstraction) {
  // With identifier abstraction (the default), renaming is invisible —
  // the AST analog of the paper's byte-ignoring representation.
  EXPECT_NEAR(similarity(GcdIterative, GcdRenamed), 1.0, 1e-12);
}

TEST_F(CodeSimilarity, RenamedCloneDetectedWithoutAbstraction) {
  AstEncodeOptions Concrete;
  Concrete.AbstractIdentifiers = false;
  double Sim = similarity(GcdIterative, GcdRenamed, Concrete);
  // Without abstraction the renamed clone is still fairly similar
  // (same operators and shape) but no longer identical.
  EXPECT_LT(Sim, 0.999);
  EXPECT_GT(Sim, 0.05);
}

TEST_F(CodeSimilarity, CloneBeatsEveryRestructuring) {
  // The kernel measures *structural* similarity: a renamed clone
  // scores far above both the recursive rewrite of the same algorithm
  // and unrelated code. (Recursive gcd is NOT required to beat the
  // unrelated loop nest — it genuinely shares less tree shape with
  // the iterative version than another while/assign-heavy program.)
  double Clone = similarity(GcdIterative, GcdRenamed);
  double Restructured = similarity(GcdIterative, GcdRecursive);
  double Unrelated = similarity(GcdIterative, SumOfProducts);
  EXPECT_GT(Clone, Restructured);
  EXPECT_GT(Clone, Unrelated);
  EXPECT_GT(Restructured, 0.0);
  EXPECT_LT(Restructured, 1.0);
}

TEST_F(CodeSimilarity, SymmetricOnPrograms) {
  EXPECT_DOUBLE_EQ(similarity(GcdIterative, SumOfProducts),
                   similarity(SumOfProducts, GcdIterative));
}

TEST_F(CodeSimilarity, BaselineKernelsAlsoApply) {
  // The representation is kernel-agnostic: the blended baseline runs
  // on the same strings.
  BlendedSpectrumKernel Kernel(3, 1.0);
  WeightedString A = encode(GcdIterative);
  WeightedString B = encode(GcdRenamed);
  EXPECT_NEAR(Kernel.evaluateNormalized(A, B), 1.0, 1e-12);
}

TEST_F(CodeSimilarity, UnrolledLoopBodyStaysClose) {
  // Copy-pasting a statement three times changes token weights, not
  // literals, so the unrolled variant stays close to the original and
  // much closer than unrelated code.
  const char *Rolled = "fn f(a, n) { while (n != 0) { a = a + 1; "
                       "n = n - 1; } return a; }";
  const char *Unrolled = "fn f(a, n) { while (n != 0) { a = a + 1; "
                         "a = a + 1; a = a + 1; n = n - 1; } return a; }";
  double Close = similarity(Rolled, Unrolled);
  double Far = similarity(Rolled, SumOfProducts);
  EXPECT_GT(Close, 0.4);
  EXPECT_GT(Close, Far);
}
