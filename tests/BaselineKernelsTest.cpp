//===- tests/BaselineKernelsTest.cpp - spectrum-family baselines -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/StringSerializer.h"
#include "kernels/BagOfWordsKernel.h"
#include "kernels/SpectrumKernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace kast;

namespace {

WeightedString fromText(const std::shared_ptr<TokenTable> &Table,
                        const std::string &Text) {
  return parseWeightedString(Text, Table).take();
}

} // namespace

//===----------------------------------------------------------------------===//
// k-spectrum
//===----------------------------------------------------------------------===//

TEST(KSpectrumTest, CountsExactLengthGrams) {
  auto Table = TokenTable::create();
  // 2-grams of "a b a b": {ab:2, ba:1}; of "b a b": {ba:1, ab:1}.
  WeightedString S = fromText(Table, "a b a b");
  WeightedString T = fromText(Table, "b a b");
  KSpectrumKernel K(2);
  // Shared: ab (2*1) + ba (1*1) = 3.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 3.0);
}

TEST(KSpectrumTest, LongerThanStringGivesZero) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  KSpectrumKernel K(5);
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 0.0);
}

TEST(KSpectrumTest, SelfKernelIsSumOfSquaredCounts) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a a a");
  // 1-grams: {a:3} -> 9.
  KSpectrumKernel K(1);
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 9.0);
}

TEST(KSpectrumTest, IgnoresWeightsInClassicMode) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:100 b:1");
  WeightedString T = fromText(Table, "a:1 b:100");
  KSpectrumKernel K(1);
  // Counts only: a (1*1) + b (1*1).
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 2.0);
}

TEST(KSpectrumTest, WeightedModeUsesWeights) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:10 b:1");
  WeightedString T = fromText(Table, "a:2 b:3");
  KSpectrumKernel K(1, /*Weighted=*/true);
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 10.0 * 2 + 1.0 * 3);
}

TEST(KSpectrumTest, WeightedModeHonorsCut) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:10 b:1");
  WeightedString T = fromText(Table, "a:2 b:3");
  KSpectrumKernel K(1, /*Weighted=*/true, /*CutWeight=*/2);
  // b:1 in S is below the cut -> only "a" contributes.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 20.0);
}

//===----------------------------------------------------------------------===//
// Blended spectrum
//===----------------------------------------------------------------------===//

TEST(BlendedTest, SumsAllLengthsUpToK) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  WeightedString T = fromText(Table, "a b");
  BlendedSpectrumKernel K(2);
  // l=1: a+b = 2; l=2: ab = 1; total 3.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 3.0);
}

TEST(BlendedTest, EqualsSumOfKSpectra) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b a c a b");
  WeightedString T = fromText(Table, "c a b a");
  BlendedSpectrumKernel Blended(3);
  double Sum = 0.0;
  for (size_t K = 1; K <= 3; ++K)
    Sum += KSpectrumKernel(K).evaluate(S, T);
  EXPECT_DOUBLE_EQ(Blended.evaluate(S, T), Sum);
}

TEST(BlendedTest, LambdaDecaysLongGrams) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  BlendedSpectrumKernel K(2, /*Lambda=*/0.5);
  // l=1: 0.25 * 2; l=2: 0.0625 * 1.
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 0.25 * 2 + 0.0625);
}

TEST(BlendedTest, NormalizedIdenticalIsOne) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "x y z x");
  BlendedSpectrumKernel K(3);
  EXPECT_NEAR(K.evaluateNormalized(S, S), 1.0, 1e-12);
}

TEST(BlendedTest, NormalizedIsBoundedByOne) {
  // Cauchy-Schwarz holds for explicit-embedding kernels.
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b a b c");
  WeightedString T = fromText(Table, "b a b");
  BlendedSpectrumKernel K(3);
  double N = K.evaluateNormalized(S, T);
  EXPECT_GE(N, 0.0);
  EXPECT_LE(N, 1.0 + 1e-12);
}

//===----------------------------------------------------------------------===//
// Bag of tokens / bag of words
//===----------------------------------------------------------------------===//

TEST(BagOfTokensTest, SingleTokenOverlap) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b b c");
  WeightedString T = fromText(Table, "b c c d");
  BagOfTokensKernel K;
  // Shared: b (2*1) + c (1*2) = 4.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 4.0);
}

TEST(BagOfWordsTest, WordsAreDelimitedRuns) {
  auto Table = TokenTable::create();
  // Words of S: {a b}, {c}; words of T: {a b}, {d}.
  WeightedString S = fromText(Table, "[ROOT] a b [LEVEL_UP] c");
  WeightedString T = fromText(Table, "[ROOT] a b [LEVEL_UP] d");
  BagOfWordsKernel K;
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 1.0); // Shared word {a b}.
}

TEST(BagOfWordsTest, RepeatedWordsMultiply) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a [BLOCK] a [BLOCK] a");
  WeightedString T = fromText(Table, "a [BLOCK] a");
  BagOfWordsKernel K;
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 6.0); // 3 * 2 for word {a}.
}

TEST(BagOfWordsTest, WeightedMode) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:5 [BLOCK] a:7");
  WeightedString T = fromText(Table, "a:2");
  BagOfWordsKernel K(/*Weighted=*/true);
  // Word {a} in S has values 5 and 7 -> 12; in T value 2.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 12.0 * 2.0);
}

TEST(BagOfWordsTest, NoSharedWords) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  WeightedString T = fromText(Table, "a c");
  BagOfWordsKernel K;
  // Words {a b} vs {a c}: no overlap (whole runs must match).
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 0.0);
}

//===----------------------------------------------------------------------===//
// Cross-kernel sanity
//===----------------------------------------------------------------------===//

TEST(BaselineKernelsTest, AllKernelsAreSymmetric) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:2 b:3 a:4 c:1");
  WeightedString T = fromText(Table, "b:1 a:5 c:2");
  KSpectrumKernel KS(2);
  BlendedSpectrumKernel BL(3, 0.7, /*Weighted=*/true, /*CutWeight=*/2);
  BagOfTokensKernel BT(/*Weighted=*/true);
  BagOfWordsKernel BW;
  for (const StringKernel *K :
       std::initializer_list<const StringKernel *>{&KS, &BL, &BT, &BW})
    EXPECT_DOUBLE_EQ(K->evaluate(S, T), K->evaluate(T, S)) << K->name();
}

TEST(BaselineKernelsTest, NamesAreDescriptive) {
  EXPECT_NE(KSpectrumKernel(4).name().find("4"), std::string::npos);
  EXPECT_NE(BlendedSpectrumKernel(3, 1.0, true, 2).name().find("cut=2"),
            std::string::npos);
  EXPECT_EQ(BagOfTokensKernel().name(), "bag-of-tokens");
}

//===----------------------------------------------------------------------===//
// Gap-weighted subsequences kernel
//===----------------------------------------------------------------------===//

#include "kernels/GapWeightedKernel.h"

TEST(GapWeightedTest, OrderOneIsScaledTokenCounts) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b a");
  WeightedString T = fromText(Table, "a c");
  // p=1: lambda^2 * sum of matching position pairs = 0.25 * 2 ("a"
  // twice in S, once in T).
  GapWeightedKernel K(1, 0.5);
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 0.25 * 2);
}

TEST(GapWeightedTest, KnownPairValue) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  GapWeightedKernel K(2, 0.5);
  // Only subsequence "ab", contiguous on both sides: lambda^4.
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 0.0625);
}

TEST(GapWeightedTest, GapsArePenalized) {
  auto Table = TokenTable::create();
  WeightedString AB = fromText(Table, "a b");
  WeightedString AxB = fromText(Table, "a x b");
  GapWeightedKernel K(2, 0.5);
  // "ab" spans 2 in AB (lambda^2) but 3 in AxB (lambda^3):
  // k(AB, AxB) = lambda^2 * lambda^3 = lambda^5.
  EXPECT_DOUBLE_EQ(K.evaluate(AB, AxB), std::pow(0.5, 5));
  // And the gapped occurrence scores below the contiguous one.
  EXPECT_LT(K.evaluate(AB, AxB), K.evaluate(AB, AB));
}

TEST(GapWeightedTest, CountsAllSubsequenceAlignments) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a a");
  GapWeightedKernel K(1, 1.0);
  // p=1, lambda=1: every (i, j) match pair counts: 2 * 2 = 4.
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 4.0);
}

TEST(GapWeightedTest, TooShortStringsGiveZero) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  GapWeightedKernel K(3, 0.5);
  EXPECT_DOUBLE_EQ(K.evaluate(S, S), 0.0);
}

TEST(GapWeightedTest, SymmetricAndNormalized) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b c a b");
  WeightedString T = fromText(Table, "b a c b");
  GapWeightedKernel K(2, 0.7);
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), K.evaluate(T, S));
  EXPECT_NEAR(K.evaluateNormalized(S, S), 1.0, 1e-12);
  double N = K.evaluateNormalized(S, T);
  EXPECT_GT(N, 0.0);
  EXPECT_LE(N, 1.0 + 1e-12);
}

TEST(GapWeightedTest, OrderTwoHandComputed) {
  auto Table = TokenTable::create();
  // s = "a b a": subsequences of length 2 and their lambda^span
  // feature values: "ab" span 2 -> l^2; "aa" span 3 -> l^3;
  // "ba" span 2 -> l^2. phi(s) = {ab: l^2, aa: l^3, ba: l^2}.
  // k(s, s) = l^4 + l^6 + l^4.
  WeightedString S = fromText(Table, "a b a");
  double L = 0.5;
  GapWeightedKernel K(2, L);
  EXPECT_NEAR(K.evaluate(S, S),
              std::pow(L, 4) + std::pow(L, 6) + std::pow(L, 4), 1e-12);
}
