//===- tests/KernelAlgebraTest.cpp - combinators and PSD properties --------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel-algebra laws for the combinators, and the PSD facts that
/// motivate the paper's §4.1 repair step: explicit-embedding kernels
/// (spectrum family, gap-weighted) always yield PSD Gram matrices,
/// whereas the Kast kernel's *pair-dependent* feature set gives up
/// that guarantee — which is exactly why the paper clips negative
/// eigenvalues.
///
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/StringSerializer.h"
#include "kernels/Combinators.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "linalg/Eigen.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kast;

namespace {

WeightedString fromText(const std::shared_ptr<TokenTable> &Table,
                        const std::string &Text) {
  return parseWeightedString(Text, Table).take();
}

/// Random corpus of short weighted strings over a small alphabet.
std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R,
             size_t Count, size_t MaxLength) {
  std::vector<WeightedString> Out;
  for (size_t I = 0; I < Count; ++I) {
    WeightedString S(Table, "s" + std::to_string(I));
    size_t Length = R.uniformInt(1, MaxLength);
    for (size_t T = 0; T < Length; ++T)
      S.append("t" + std::to_string(R.uniformInt(0, 4)),
               R.uniformInt(1, 8));
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Combinators
//===----------------------------------------------------------------------===//

TEST(KernelAlgebraTest, SumEqualsManualSum) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b a c");
  WeightedString T = fromText(Table, "b a c");
  auto K1 = std::make_shared<KSpectrumKernel>(1);
  auto K2 = std::make_shared<KSpectrumKernel>(2);
  SumKernel Sum({K1, K2});
  EXPECT_DOUBLE_EQ(Sum.evaluate(S, T),
                   K1->evaluate(S, T) + K2->evaluate(S, T));
}

TEST(KernelAlgebraTest, WeightedSumScales) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b");
  auto K1 = std::make_shared<BagOfTokensKernel>();
  SumKernel Sum({K1}, {2.5});
  EXPECT_DOUBLE_EQ(Sum.evaluate(S, S), 2.5 * K1->evaluate(S, S));
}

TEST(KernelAlgebraTest, ProductEqualsManualProduct) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b a");
  WeightedString T = fromText(Table, "a b");
  auto K1 = std::make_shared<KSpectrumKernel>(1);
  auto K2 = std::make_shared<BagOfTokensKernel>(true);
  ProductKernel Product({K1, K2});
  EXPECT_DOUBLE_EQ(Product.evaluate(S, T),
                   K1->evaluate(S, T) * K2->evaluate(S, T));
}

TEST(KernelAlgebraTest, NormalizedWrapperSelfIsOne) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:3 b:2 a:4");
  NormalizedKernel N(std::make_shared<BlendedSpectrumKernel>(2));
  EXPECT_NEAR(N.evaluate(S, S), 1.0, 1e-12);
}

TEST(KernelAlgebraTest, CombinatorsCompose) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a b c");
  WeightedString T = fromText(Table, "c b a");
  auto Mixed = std::make_shared<SumKernel>(
      std::vector<std::shared_ptr<StringKernel>>{
          std::make_shared<NormalizedKernel>(
              std::make_shared<KastSpectrumKernel>(
                  KastKernelOptions{2})),
          std::make_shared<NormalizedKernel>(
              std::make_shared<BagOfTokensKernel>())},
      std::vector<double>{0.7, 0.3});
  double V = Mixed->evaluate(S, T);
  EXPECT_GE(V, 0.0);
  EXPECT_LE(V, 1.0 + 1e-12);
  EXPECT_NEAR(Mixed->evaluate(S, S), 1.0, 1e-12);
  EXPECT_NE(Mixed->name().find("sum("), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PSD properties — why §4.1 needs the repair step
//===----------------------------------------------------------------------===//

class PsdPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PsdPropertySweep, ExplicitEmbeddingKernelsArePsd) {
  Rng R(GetParam());
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 12, 15);

  const BlendedSpectrumKernel Blended(3, 0.8);
  const KSpectrumKernel KSpec(2);
  const GapWeightedKernel Gap(2, 0.5);
  for (const StringKernel *Kernel :
       std::initializer_list<const StringKernel *>{&Blended, &KSpec,
                                                   &Gap}) {
    KernelMatrixOptions Options;
    Options.Normalize = false;
    Matrix K = computeKernelMatrix(*Kernel, Corpus, Options);
    EXPECT_GE(minEigenvalue(K), -1e-8) << Kernel->name();
  }
}

TEST_P(PsdPropertySweep, SumAndProductPreservePsd) {
  Rng R(GetParam() ^ 0xFEED);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 10, 12);
  auto K1 = std::make_shared<KSpectrumKernel>(1);
  auto K2 = std::make_shared<KSpectrumKernel>(2);
  SumKernel Sum({K1, K2}, {1.5, 0.5});
  ProductKernel Product({K1, K2});
  KernelMatrixOptions Options;
  Options.Normalize = false;
  EXPECT_GE(minEigenvalue(computeKernelMatrix(Sum, Corpus, Options)),
            -1e-8);
  EXPECT_GE(minEigenvalue(computeKernelMatrix(Product, Corpus, Options)),
            -1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsdPropertySweep,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PsdPropertyTest, KastKernelCanBeIndefinite) {
  // The Kast kernel's feature set depends on the PAIR being compared
  // (maximal matches of A vs B), so the Gram matrix need not be PSD —
  // the reason the paper rebuilds matrices after clipping negative
  // eigenvalues (§4.1). Witness: self-similarities are weight^2 while
  // cross-similarities can exceed the corresponding products when
  // repeated substrings accumulate weight across occurrences.
  // Witness: s0 = aaaa (weight 9 each) + filler. Against s1 = aa +
  // filler, the shared substring "a a" occurs three times in s0 with
  // *overlapping* occurrences, so f_{aa}(s0) = 54 exceeds s0's total
  // weight contribution to the self-kernel: k(s0,s1) = 54 * 18 = 972
  // while sqrt(k(s0,s0) k(s1,s1)) = 37 * 19 = 703.
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = {
      fromText(Table, "a:9 a:9 a:9 a:9 x:1"),
      fromText(Table, "a:9 a:9 y:1"),
  };
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Normalize = false;
  Matrix K = computeKernelMatrix(Kernel, Corpus, Options);
  EXPECT_DOUBLE_EQ(K.at(0, 0), 37.0 * 37.0);
  EXPECT_DOUBLE_EQ(K.at(1, 1), 19.0 * 19.0);
  EXPECT_DOUBLE_EQ(K.at(0, 1), 54.0 * 18.0);
  EXPECT_GT(K.at(0, 1),
            std::sqrt(K.at(0, 0)) * std::sqrt(K.at(1, 1)));
  EXPECT_LT(minEigenvalue(K), -1e-6);
  // And the §4.1 repair fixes it.
  EXPECT_GE(minEigenvalue(projectToPsd(K)), -1e-8);
}
