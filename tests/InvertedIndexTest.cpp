//===- tests/InvertedIndexTest.cpp - differential recall harness -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The correctness harness of the two-tier (cluster router + inverted
// posting lists) retrieval path, pinned against the exact O(N) scan as
// ground truth. The central contract: run *exhaustively* — every
// centroid probed, no df-pruning, no re-rank budget (the
// RoutingOptions defaults) — the approximate path must be
// bit-identical to the exact scan: same ids, same similarity bit
// patterns, same tie-break order. Under aggressive pruning the
// results may differ, but only within a measured recall envelope, and
// structural invariants (unrouted tail always found, tombstoned
// entries never resurface, snapshots immune to later routing
// rebuilds) must hold unconditionally.
//
//===----------------------------------------------------------------------===//

#include "index/IndexService.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/CorpusIO.h"
#include "workloads/Generators.h"

#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <set>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table, Rng &R,
                            size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R, size_t N,
             const std::string &Prefix) {
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < N; ++I) {
    WeightedString S = randomString(Table, R, R.uniformInt(4, 32), 6);
    S.setName(Prefix + std::to_string(I));
    Corpus.push_back(std::move(S));
  }
  return Corpus;
}

BlendedSpectrumKernel testKernel() {
  return BlendedSpectrumKernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
}

/// Bit-identical, not just ==: similarity must carry the exact scan's
/// bit pattern (a double == would let -0.0 pass for +0.0).
void expectBitIdentical(const std::vector<Neighbor> &Approx,
                        const std::vector<Neighbor> &Exact,
                        const std::string &What) {
  ASSERT_EQ(Approx.size(), Exact.size()) << What;
  for (size_t I = 0; I < Exact.size(); ++I) {
    EXPECT_EQ(Approx[I].Index, Exact[I].Index) << What << " rank " << I;
    EXPECT_EQ(std::bit_cast<uint64_t>(Approx[I].Similarity),
              std::bit_cast<uint64_t>(Exact[I].Similarity))
        << What << " rank " << I;
  }
}

void expectHitsBitIdentical(const std::vector<ServiceHit> &Approx,
                            const std::vector<ServiceHit> &Exact,
                            const std::string &What) {
  ASSERT_EQ(Approx.size(), Exact.size()) << What;
  for (size_t I = 0; I < Exact.size(); ++I) {
    EXPECT_EQ(Approx[I].Name, Exact[I].Name) << What << " rank " << I;
    EXPECT_EQ(Approx[I].Label, Exact[I].Label) << What << " rank " << I;
    EXPECT_EQ(std::bit_cast<uint64_t>(Approx[I].Similarity),
              std::bit_cast<uint64_t>(Exact[I].Similarity))
        << What << " rank " << I;
  }
}

double recallAgainst(const std::vector<Neighbor> &Exact,
                     const std::vector<Neighbor> &Approx) {
  if (Exact.empty())
    return 1.0;
  std::set<size_t> Truth;
  for (const Neighbor &N : Exact)
    Truth.insert(N.Index);
  size_t Found = 0;
  for (const Neighbor &N : Approx)
    Found += Truth.count(N.Index);
  return static_cast<double>(Found) / static_cast<double>(Truth.size());
}

//===----------------------------------------------------------------------===//
// Differential: exhaustive mode is the exact scan, bit for bit
//===----------------------------------------------------------------------===//

TEST(InvertedIndexTest, ExhaustiveModeIsBitIdenticalToExactScan) {
  Rng R(1107);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 48, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);
  // Duplicate a third of the corpus under fresh names: exact ties are
  // now abundant and the (sim desc, id asc) order must survive the
  // candidate-generation detour.
  for (size_t I = 0; I < Corpus.size(); I += 3)
    Index.add("dup" + std::to_string(I), "", Kernel.profile(Corpus[I]));

  // RoutingOptions defaults *are* exhaustive mode: every centroid
  // probed, no df-pruning, no re-rank budget.
  RoutingOptions Exhaustive;
  Exhaustive.Cluster.NumCentroids = 7;
  Index.buildRouting(Exhaustive, /*Threads=*/1);
  ASSERT_TRUE(Index.routed());
  ASSERT_EQ(Index.routedCount(), Index.size());

  std::vector<KernelProfile> Queries;
  for (const WeightedString &Q : randomCorpus(Table, R, 12, "q"))
    Queries.push_back(Kernel.profile(Q));
  for (size_t I = 0; I < Index.size(); I += 7) // Self queries: exact ties.
    Queries.push_back(Index.profile(I));
  Queries.push_back(KernelProfile()); // Empty query: everything scores 0.
  {
    // A query over a disjoint alphabet shares no feature with anyone:
    // every similarity is +0.0 and the result must be the pure
    // zero-fill order (ids ascending).
    WeightedString Alien(Table);
    for (size_t I = 0; I < 8; ++I)
      Alien.append("z" + std::to_string(I), 3);
    Queries.push_back(Kernel.profile(Alien));
  }

  for (size_t Q = 0; Q < Queries.size(); ++Q) {
    for (size_t K : {size_t(1), size_t(5), Index.size(), Index.size() + 10}) {
      for (bool Normalize : {true, false}) {
        const std::string What = "query " + std::to_string(Q) + " k " +
                                 std::to_string(K) +
                                 (Normalize ? " cos" : " raw");
        expectBitIdentical(Index.queryApprox(Queries[Q], K, Normalize),
                           Index.query(Queries[Q], K, Normalize), What);
      }
    }
  }
}

TEST(InvertedIndexTest, SingleCentroidExhaustiveStillBitIdentical) {
  Rng R(2214);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 30, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);

  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 1;
  Index.buildRouting(Opts, 1);
  ASSERT_EQ(Index.router()->numCentroids(), 1u);

  for (size_t I = 0; I < Index.size(); I += 5)
    expectBitIdentical(Index.queryApprox(Index.profile(I), 6),
                       Index.query(Index.profile(I), 6),
                       "self " + std::to_string(I));
  KernelProfile Held = Kernel.profile(randomCorpus(Table, R, 1, "h")[0]);
  expectBitIdentical(Index.queryApprox(Held, 9), Index.query(Held, 9),
                     "held-out");
}

TEST(InvertedIndexTest, EdgeCasesReturnCleanly) {
  BlendedSpectrumKernel Kernel = testKernel();
  KernelProfile P;
  P.add(3, 1.0);
  P.finalize();

  // Routing an empty index is a no-op tier: queries fall through.
  ProfileIndex Empty("k");
  Empty.buildRouting({}, 1);
  EXPECT_TRUE(Empty.routed());
  EXPECT_EQ(Empty.routedCount(), 0u);
  EXPECT_TRUE(Empty.queryApprox(P, 3).empty());
  EXPECT_TRUE(Empty.queryApprox(P, 0).empty());
  EXPECT_TRUE(Empty.queryApprox(KernelProfile(), 4).empty());

  // An unrouted index answers queryApprox through the exact scan.
  ProfileIndex Unrouted("k");
  Unrouted.add("a", "", P);
  EXPECT_FALSE(Unrouted.routed());
  expectBitIdentical(Unrouted.queryApprox(P, 2), Unrouted.query(P, 2),
                     "unrouted fallback");

  // k == 0 and k > N on a routed index.
  Rng R(5150);
  auto Table = TokenTable::create();
  ProfileIndex Index =
      ProfileIndex::build(Kernel, randomCorpus(Table, R, 9, "c"), {}, 1);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 3;
  Index.buildRouting(Opts, 1);
  KernelProfile Q = Index.profile(4);
  EXPECT_TRUE(Index.queryApprox(Q, 0).empty());
  expectBitIdentical(Index.queryApprox(Q, 100), Index.query(Q, 100),
                     "k beyond size");
  EXPECT_EQ(Index.queryApprox(Q, 100).size(), Index.size());

  // clearRouting really clears.
  Index.clearRouting();
  EXPECT_FALSE(Index.routed());
  EXPECT_EQ(Index.routedCount(), 0u);
}

TEST(InvertedIndexTest, UnroutedTailIsAlwaysScannedExactly) {
  Rng R(3321);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 40, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 5;
  Index.buildRouting(Opts, 1);
  const size_t Covered = Index.routedCount();

  std::vector<WeightedString> Tail = randomCorpus(Table, R, 10, "tail");
  for (const WeightedString &S : Tail)
    Index.add(S.name(), "", Kernel.profile(S));
  ASSERT_EQ(Index.routedCount(), Covered);
  ASSERT_GT(Index.size(), Covered);

  // Exhaustive: still bit-identical with a tail present.
  for (size_t I = 0; I < Index.size(); I += 11)
    expectBitIdentical(Index.queryApprox(Index.profile(I), 7),
                       Index.query(Index.profile(I), 7),
                       "tail self " + std::to_string(I));

  // Aggressive pruning: a tail entry queried with itself must still be
  // rank 1 at cosine 1 — the tail bypasses every pruning knob.
  RoutingOptions Aggressive;
  Aggressive.Cluster.NumCentroids = 5;
  Aggressive.MaxDocFrequency = 0.2;
  Aggressive.RerankBudget = 4;
  Aggressive.DefaultNProbe = 1;
  Index.clearRouting();
  Index.buildRouting(Aggressive, 1);
  std::vector<WeightedString> Tail2 = randomCorpus(Table, R, 6, "tail2");
  for (const WeightedString &S : Tail2)
    Index.add(S.name(), "", Kernel.profile(S));
  for (size_t I = Index.routedCount(); I < Index.size(); ++I) {
    std::vector<Neighbor> Hits = Index.queryApprox(Index.profile(I), 1);
    ASSERT_EQ(Hits.size(), 1u);
    EXPECT_EQ(Hits[0].Index, I);
    EXPECT_NEAR(Hits[0].Similarity, 1.0, 1e-12);
  }
}

//===----------------------------------------------------------------------===//
// Differential: aggressive pruning stays inside a recall envelope
//===----------------------------------------------------------------------===//

TEST(InvertedIndexTest, AggressivePruningKeepsRecall) {
  // A structured corpus (generator categories + mutated copies) is
  // what the router is for: near-duplicates land in the same cluster.
  CorpusOptions Shape;
  Shape.BaseA = 6;
  Shape.BaseB = 6;
  Shape.BaseC = 6;
  Shape.BaseD = 6;
  Shape.CopiesPerBase = 6;
  LabeledDataset Data = convertCorpus(Pipeline::withBytes(), generateCorpus(Shape));
  ASSERT_GE(Data.size(), 100u);
  BlendedSpectrumKernel Kernel = testKernel();

  std::vector<WeightedString> Strings;
  std::vector<std::string> Labels;
  for (size_t I = 0; I < Data.size(); ++I) {
    Strings.push_back(Data.string(I));
    Labels.push_back(Data.label(I));
  }
  ProfileIndex Index = ProfileIndex::build(Kernel, Strings, Labels, 1);

  RoutingOptions Aggressive;
  Aggressive.Cluster.NumCentroids = 8;
  Aggressive.MaxDocFrequency = 0.25;
  Aggressive.RerankBudget = 48;
  Aggressive.DefaultNProbe = 2;
  Index.buildRouting(Aggressive, 1);

  double RecallSum = 0.0;
  size_t QueryCount = 0;
  for (size_t I = 0; I < Index.size(); I += 3) {
    KernelProfile Q = Index.profile(I);
    RecallSum += recallAgainst(Index.query(Q, 5), Index.queryApprox(Q, 5));
    ++QueryCount;
  }
  const double Recall = RecallSum / static_cast<double>(QueryCount);
  // Deterministic corpus + deterministic fit: this is a fixed number,
  // asserted with slack so kernel-side tweaks don't thrash the test.
  EXPECT_GE(Recall, 0.85) << "mean recall@5 " << Recall << " over "
                          << QueryCount << " queries";
}

//===----------------------------------------------------------------------===//
// Persistence: the sidecar restores the tier bit-for-bit
//===----------------------------------------------------------------------===//

TEST(InvertedIndexTest, SaveLoadRoundTripsRoutingSidecar) {
  Rng R(7788);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 36, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 6;
  Opts.MaxDocFrequency = 0.5;
  Opts.RerankBudget = 16;
  Opts.DefaultNProbe = 3;
  Index.buildRouting(Opts, 1);

  const std::string Path = testing::TempDir() + "/kast_routed_index.kpc";
  ASSERT_TRUE(Index.save(Path).ok());
  ASSERT_TRUE(std::filesystem::exists(Path + ".route"));

  Expected<ProfileIndex> Loaded = ProfileIndex::load(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_TRUE(Loaded->routed());
  EXPECT_EQ(Loaded->routedCount(), Index.routedCount());
  EXPECT_EQ(Loaded->router()->numCentroids(), Index.router()->numCentroids());
  EXPECT_EQ(Loaded->router()->assignments(), Index.router()->assignments());
  EXPECT_EQ(Loaded->routingOptions()->MaxDocFrequency, Opts.MaxDocFrequency);
  EXPECT_EQ(Loaded->routingOptions()->RerankBudget, Opts.RerankBudget);
  EXPECT_EQ(Loaded->routingOptions()->DefaultNProbe, Opts.DefaultNProbe);

  // Same pruned-path answers (bitwise), same exhaustive answers.
  for (size_t I = 0; I < Index.size(); I += 5) {
    KernelProfile Q = Index.profile(I);
    expectBitIdentical(Loaded->queryApprox(Q, 5), Index.queryApprox(Q, 5),
                       "pruned reload " + std::to_string(I));
    expectBitIdentical(Loaded->queryApprox(Q, 5, true, /*NProbe=*/
                                           Loaded->router()->numCentroids()),
                       Index.queryApprox(Q, 5, true,
                                         Index.router()->numCentroids()),
                       "exhaustive reload " + std::to_string(I));
  }

  // Saving the index unrouted sweeps the stale sidecar.
  Index.clearRouting();
  ASSERT_TRUE(Index.save(Path).ok());
  EXPECT_FALSE(std::filesystem::exists(Path + ".route"));
  Expected<ProfileIndex> Unrouted = ProfileIndex::load(Path);
  ASSERT_TRUE(Unrouted.hasValue()) << Unrouted.message();
  EXPECT_FALSE(Unrouted->routed());
}

//===----------------------------------------------------------------------===//
// Service: routing under snapshot isolation
//===----------------------------------------------------------------------===//

TEST(InvertedIndexTest, ServiceExhaustiveApproxMatchesExact) {
  Rng R(9090);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 50, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);

  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 3;
  IndexService Service = IndexService::fromIndex(Index, SvcOpts);
  RoutingOptions Exhaustive;
  Exhaustive.Cluster.NumCentroids = 4;
  Service.rebuildRouting(Exhaustive, 1);
  ASSERT_TRUE(Service.routed());

  // Post-routing writes land in the unrouted tail; removals tombstone
  // inside the routed segment. Both paths must agree after that.
  std::vector<WeightedString> Extra = randomCorpus(Table, R, 8, "x");
  for (const WeightedString &S : Extra)
    Service.add(S.name(), "", Kernel.profile(S));
  ASSERT_EQ(Service.remove(Corpus[7].name()), 1u);
  ASSERT_EQ(Service.remove(Corpus[20].name()), 1u);

  std::vector<KernelProfile> Queries;
  for (const WeightedString &Q : randomCorpus(Table, R, 8, "q"))
    Queries.push_back(Kernel.profile(Q));
  Queries.push_back(Kernel.profile(Corpus[7]));  // Removed: must be absent.
  Queries.push_back(KernelProfile());
  for (size_t Q = 0; Q < Queries.size(); ++Q) {
    for (size_t K : {size_t(1), size_t(6), size_t(200)}) {
      expectHitsBitIdentical(
          Service.queryApprox(Queries[Q], K, true, /*NProbe=*/0, 1),
          Service.query(Queries[Q], K, true, 1),
          "query " + std::to_string(Q) + " k " + std::to_string(K));
    }
  }
  // The tombstoned name never resurfaces, not even via zero-fill.
  for (const ServiceHit &H :
       Service.queryApprox(Kernel.profile(Corpus[7]), 200, true, 0, 1))
    EXPECT_NE(H.Name, Corpus[7].name());
}

TEST(InvertedIndexTest, SnapshotTakenMidIngestIsImmuneToRoutingRebuild) {
  Rng R(4242);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 40, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 2;
  SvcOpts.SealThreshold = 8;
  IndexService Service(Kernel.name(), SvcOpts);
  for (size_t I = 0; I < 25; ++I)
    Service.add(Corpus[I].name(), "", Kernel.profile(Corpus[I]));
  Service.rebuildRouting({}, 1);
  for (size_t I = 25; I < 32; ++I) // Mid-ingest: tail behind the routing.
    Service.add(Corpus[I].name(), "", Kernel.profile(Corpus[I]));

  IndexSnapshot Snap = Service.snapshot();
  KernelProfile Probe = Kernel.profile(Corpus[3]);
  std::vector<ServiceHit> ExactBefore = Snap.query(Probe, 10, true, 1);
  std::vector<ServiceHit> ApproxBefore = Snap.queryApprox(Probe, 10, true, 0, 1);
  // Exhaustive defaults: the snapshot's two paths already agree.
  expectHitsBitIdentical(ApproxBefore, ExactBefore, "snapshot pre-mutation");

  // Mutate the service hard: grow, remove, re-route, compact.
  for (size_t I = 32; I < Corpus.size(); ++I)
    Service.add(Corpus[I].name(), "", Kernel.profile(Corpus[I]));
  Service.remove(Corpus[3].name());
  RoutingOptions Aggressive;
  Aggressive.Cluster.NumCentroids = 3;
  Aggressive.MaxDocFrequency = 0.3;
  Aggressive.DefaultNProbe = 1;
  Service.rebuildRouting(Aggressive, 1);
  Service.compact(1);

  // The snapshot re-answers identically, both paths, bit for bit.
  expectHitsBitIdentical(Snap.query(Probe, 10, true, 1), ExactBefore,
                         "snapshot exact post-mutation");
  expectHitsBitIdentical(Snap.queryApprox(Probe, 10, true, 0, 1), ApproxBefore,
                         "snapshot approx post-mutation");

  // And the live service reflects the mutations: a compact() drops the
  // routing (fitted on replaced arenas), so approx falls back to exact
  // and the removed entry is gone.
  EXPECT_EQ(Service.snapshot().routedShardCount(), 0u);
  for (const ServiceHit &H : Service.queryApprox(Probe, 100, true, 0, 1))
    EXPECT_NE(H.Name, Corpus[3].name());
  expectHitsBitIdentical(Service.queryApprox(Probe, 10, true, 0, 1),
                         Service.query(Probe, 10, true, 1),
                         "post-compact fallback");
}

TEST(InvertedIndexTest, ServiceRoutingPersistsAcrossRestart) {
  Rng R(6161);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 44, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);
  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 3;
  IndexService Service = IndexService::fromIndex(Index, SvcOpts);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 4;
  Opts.MaxDocFrequency = 0.5;
  Opts.DefaultNProbe = 2;
  Service.rebuildRouting(Opts, 1);

  const std::string Dir = testing::TempDir() + "/kast_svc_routing";
  std::filesystem::create_directories(Dir);
  ASSERT_TRUE(writeShardedProfileCaches(Service.toShardCaches(), Dir).ok());
  ASSERT_TRUE(Service.saveShardRouting(Dir).ok());

  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileCaches(Dir);
  ASSERT_TRUE(Caches.hasValue()) << Caches.message();
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take(), SvcOpts);
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  Status L = Restored->loadShardRouting(Dir);
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(Restored->snapshot().routedShardCount(), SvcOpts.Shards);

  for (size_t I = 0; I < Corpus.size(); I += 6) {
    KernelProfile Q = Kernel.profile(Corpus[I]);
    expectHitsBitIdentical(Restored->queryApprox(Q, 5, true, 0, 1),
                           Service.queryApprox(Q, 5, true, 0, 1),
                           "restored pruned " + std::to_string(I));
  }

  // A sidecar paired with the wrong contents fails loudly: drop one
  // entry and re-save the caches but not the routing.
  ASSERT_GT(Restored->remove(Corpus[1].name()), 0u);
  Restored->compact(1);
  ASSERT_TRUE(
      writeShardedProfileCaches(Restored->toShardCaches(), Dir).ok());
  Expected<std::vector<ProfileStoreCache>> Stale =
      loadShardedProfileCaches(Dir);
  ASSERT_TRUE(Stale.hasValue()) << Stale.message();
  Expected<IndexService> Mismatch =
      IndexService::fromShardCaches(Stale.take(), SvcOpts);
  ASSERT_TRUE(Mismatch.hasValue()) << Mismatch.message();
  Status Bad = Mismatch->loadShardRouting(Dir);
  ASSERT_FALSE(Bad.ok());
  EXPECT_NE(Bad.message().find("does not match"), std::string::npos)
      << Bad.message();
}

TEST(InvertedIndexTest, ImageSaveSweepsStaleRouteSidecars) {
  Rng R(7272);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 40, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 2;
  IndexService Service =
      IndexService::fromIndex(ProfileIndex::build(Kernel, Corpus, {}, 1),
                              SvcOpts);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 3;
  Service.rebuildRouting(Opts, 1);

  const std::string Dir = testing::TempDir() + "/kast_route_sweep";
  std::filesystem::create_directories(Dir);
  ASSERT_TRUE(Service.saveShardRouting(Dir).ok());
  ASSERT_TRUE(std::filesystem::exists(Dir + "/shard-000.route"));
  ASSERT_TRUE(std::filesystem::exists(Dir + "/shard-001.route"));

  // A v3 image save embeds routing as sections; the now-redundant
  // sidecars would otherwise linger and bite a later restore whose
  // contents drifted. The save sweeps them.
  ASSERT_TRUE(writeShardedProfileImages(Service.toShardCaches(), Dir).ok());
  EXPECT_FALSE(std::filesystem::exists(Dir + "/shard-000.route"));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/shard-001.route"));

  // The swept directory restores routed from the images alone.
  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileImages(Dir);
  ASSERT_TRUE(Caches.hasValue()) << Caches.message();
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take(), SvcOpts);
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  EXPECT_EQ(Restored->snapshot().routedShardCount(), SvcOpts.Shards);
}

TEST(InvertedIndexTest, EmbeddedRoutingToleratesAgreeingSidecarOnly) {
  Rng R(7373);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 40, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 2;
  IndexService Service =
      IndexService::fromIndex(ProfileIndex::build(Kernel, Corpus, {}, 1),
                              SvcOpts);
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 3;
  Service.rebuildRouting(Opts, 1);

  const std::string Dir = testing::TempDir() + "/kast_route_agree";
  std::filesystem::create_directories(Dir);
  ASSERT_TRUE(writeShardedProfileImages(Service.toShardCaches(), Dir).ok());

  auto restore = [&]() {
    Expected<std::vector<ProfileStoreCache>> Caches =
        loadShardedProfileImages(Dir);
    EXPECT_TRUE(Caches.hasValue()) << Caches.message();
    Expected<IndexService> Restored =
        IndexService::fromShardCaches(Caches.take(), SvcOpts);
    EXPECT_TRUE(Restored.hasValue()) << Restored.message();
    return Restored.take();
  };

  // An agreeing sidecar beside an embedded-routing image is a no-op:
  // loadShardRouting recognises the match and rebuilds nothing.
  IndexService Restored = restore();
  ASSERT_EQ(Restored.snapshot().routedShardCount(), SvcOpts.Shards);
  ASSERT_TRUE(Service.saveShardRouting(Dir).ok());
  const uint64_t Rebuilds = postingRebuildCount();
  Status Agree = Restored.loadShardRouting(Dir);
  EXPECT_TRUE(Agree.ok()) << Agree.message();
  EXPECT_EQ(postingRebuildCount(), Rebuilds);
  EXPECT_EQ(Restored.snapshot().routedShardCount(), SvcOpts.Shards);

  // A *disagreeing* sidecar (a different fit left behind by another
  // run) fails loudly instead of silently shadowing the embedded
  // arenas.
  IndexService Refit = restore();
  RoutingOptions Other;
  Other.Cluster.NumCentroids = 2;
  Refit.rebuildRouting(Other, 1);
  ASSERT_TRUE(Refit.saveShardRouting(Dir).ok());
  IndexService Victim = restore();
  Status Clash = Victim.loadShardRouting(Dir);
  ASSERT_FALSE(Clash.ok());
  EXPECT_NE(Clash.message().find("disagrees"), std::string::npos)
      << Clash.message();
}

//===----------------------------------------------------------------------===//
// Router unit behavior
//===----------------------------------------------------------------------===//

TEST(InvertedIndexTest, RouterFitIsThreadCountInvariant) {
  Rng R(8181);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 64, "c");
  BlendedSpectrumKernel Kernel = testKernel();
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);

  ClusterRouterOptions Opts;
  Opts.NumCentroids = 6;
  ClusterRouter Serial = ClusterRouter::build(Index.store(), Opts, 1);
  ClusterRouter Parallel = ClusterRouter::build(Index.store(), Opts, 4);
  EXPECT_EQ(Serial.assignments(), Parallel.assignments());
  ASSERT_EQ(Serial.numCentroids(), Parallel.numCentroids());
  for (size_t C = 0; C < Serial.numCentroids(); ++C) {
    const ProfileView A = Serial.centroids().view(C);
    const ProfileView B = Parallel.centroids().view(C);
    ASSERT_EQ(A.Size, B.Size) << "centroid " << C;
    for (size_t E = 0; E < A.Size; ++E) {
      EXPECT_EQ(A.Hashes[E], B.Hashes[E]) << "centroid " << C;
      EXPECT_EQ(std::bit_cast<uint64_t>(A.Values[E]),
                std::bit_cast<uint64_t>(B.Values[E]))
          << "centroid " << C;
    }
  }

  // Assignments are in range, and each profile's assigned centroid is
  // the one route() ranks first.
  for (size_t I = 0; I < Index.size(); ++I) {
    ASSERT_LT(Serial.assignments()[I], Serial.numCentroids());
    std::vector<uint32_t> Top = Serial.route(Index.profile(I), 1);
    ASSERT_EQ(Top.size(), 1u);
    EXPECT_EQ(Top[0], Serial.assignments()[I]) << "profile " << I;
  }

  // route() clamps NProbe and returns every centroid for NProbe == 0.
  EXPECT_EQ(Serial.route(Index.profile(0), 0).size(), Serial.numCentroids());
  EXPECT_EQ(Serial.route(Index.profile(0), 100).size(),
            Serial.numCentroids());
}

} // namespace
