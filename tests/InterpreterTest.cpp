//===- tests/InterpreterTest.cpp - Mini interpreter unit tests -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Interpreter.h"
#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

int64_t run(const char *Source, const std::string &Fn,
            std::vector<int64_t> Args) {
  Expected<Ast> Tree = parseProgram(Source);
  EXPECT_TRUE(Tree.hasValue()) << Tree.message();
  Expected<int64_t> V = runProgram(*Tree, Fn, Args);
  EXPECT_TRUE(V.hasValue()) << V.message();
  return V.hasValue() ? *V : -999999;
}

} // namespace

TEST(InterpreterTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(run("fn f() { return 1 + 2 * 3; }", "f", {}), 7);
  EXPECT_EQ(run("fn f() { return (1 + 2) * 3; }", "f", {}), 9);
  EXPECT_EQ(run("fn f() { return 10 - 3 - 2; }", "f", {}), 5);
  EXPECT_EQ(run("fn f() { return 17 % 5; }", "f", {}), 2);
  EXPECT_EQ(run("fn f() { return -3 * -4; }", "f", {}), 12);
}

TEST(InterpreterTest, ComparisonsAndLogic) {
  EXPECT_EQ(run("fn f() { return 3 < 4; }", "f", {}), 1);
  EXPECT_EQ(run("fn f() { return 4 <= 3; }", "f", {}), 0);
  EXPECT_EQ(run("fn f() { return 1 && 0 || 1; }", "f", {}), 1);
  EXPECT_EQ(run("fn f() { return !5; }", "f", {}), 0);
  EXPECT_EQ(run("fn f() { return !0; }", "f", {}), 1);
}

TEST(InterpreterTest, ShortCircuitSkipsSideConditions) {
  // The right operand would divide by zero; && must not evaluate it.
  EXPECT_EQ(run("fn f(x) { return x != 0 && 10 / x > 1; }", "f", {0}), 0);
  EXPECT_EQ(run("fn f(x) { return x == 0 || 10 / x > 1; }", "f", {0}), 1);
}

TEST(InterpreterTest, VariablesAndAssignment) {
  EXPECT_EQ(run("fn f() { let a = 2; a = a + 3; return a; }", "f", {}), 5);
}

TEST(InterpreterTest, IfElseChains) {
  const char *Sign = "fn sign(x) { if (x < 0) { return 0 - 1; } "
                     "else if (x == 0) { return 0; } else { return 1; } }";
  EXPECT_EQ(run(Sign, "sign", {-5}), -1);
  EXPECT_EQ(run(Sign, "sign", {0}), 0);
  EXPECT_EQ(run(Sign, "sign", {9}), 1);
}

TEST(InterpreterTest, WhileLoops) {
  const char *SumTo = "fn sum(n) { let s = 0; let i = 1; "
                      "while (i <= n) { s = s + i; i = i + 1; } return s; }";
  EXPECT_EQ(run(SumTo, "sum", {10}), 55);
  EXPECT_EQ(run(SumTo, "sum", {0}), 0);
}

TEST(InterpreterTest, FunctionCallsAndRecursion) {
  const char *Program = "fn fact(n) { if (n <= 1) { return 1; } "
                        "return n * fact(n - 1); } "
                        "fn twice(x) { return fact(x) * 2; }";
  EXPECT_EQ(run(Program, "fact", {5}), 120);
  EXPECT_EQ(run(Program, "twice", {4}), 48);
}

TEST(InterpreterTest, FallingOffTheEndReturnsZero) {
  EXPECT_EQ(run("fn f() { let a = 1; }", "f", {}), 0);
  EXPECT_EQ(run("fn f() { return; }", "f", {}), 0);
}

TEST(InterpreterTest, IterativeAndRecursiveGcdAgree) {
  // The behavioral counterpart of the structural-similarity tests.
  const char *Iterative =
      "fn gcd(a, b) { while (b != 0) { let t = b; b = a % b; a = t; } "
      "return a; }";
  const char *Recursive = "fn gcd(a, b) { if (b == 0) { return a; } "
                          "return gcd(b, a % b); }";
  const std::pair<int64_t, int64_t> Cases[] = {
      {48, 18}, {18, 48}, {7, 13}, {100, 100}, {270, 192}, {5, 0}};
  for (auto [A, B] : Cases)
    EXPECT_EQ(run(Iterative, "gcd", {A, B}), run(Recursive, "gcd", {A, B}))
        << A << "," << B;
}

TEST(InterpreterTest, RuntimeErrors) {
  Expected<Ast> Tree = parseProgram("fn f() { return 1 / 0; }");
  ASSERT_TRUE(Tree.hasValue());
  Expected<int64_t> V = runProgram(*Tree, "f", {});
  ASSERT_FALSE(V.hasValue());
  EXPECT_NE(V.message().find("division by zero"), std::string::npos);
}

TEST(InterpreterTest, UnknownFunctionAndArity) {
  Expected<Ast> Tree = parseProgram("fn f(a) { return a; }");
  ASSERT_TRUE(Tree.hasValue());
  EXPECT_FALSE(runProgram(*Tree, "g", {}).hasValue());
  EXPECT_FALSE(runProgram(*Tree, "f", {1, 2}).hasValue());
}

TEST(InterpreterTest, UndeclaredVariableFails) {
  Expected<Ast> Tree = parseProgram("fn f() { x = 3; return x; }");
  ASSERT_TRUE(Tree.hasValue());
  Expected<int64_t> V = runProgram(*Tree, "f", {});
  ASSERT_FALSE(V.hasValue());
  EXPECT_NE(V.message().find("undeclared"), std::string::npos);
}

TEST(InterpreterTest, InfiniteLoopHitsStepLimit) {
  Expected<Ast> Tree = parseProgram("fn f() { while (1) { } return 0; }");
  ASSERT_TRUE(Tree.hasValue());
  InterpreterLimits Limits;
  Limits.MaxSteps = 1000;
  Expected<int64_t> V = runProgram(*Tree, "f", {}, Limits);
  ASSERT_FALSE(V.hasValue());
  EXPECT_NE(V.message().find("step limit"), std::string::npos);
}

TEST(InterpreterTest, InfiniteRecursionHitsDepthLimit) {
  Expected<Ast> Tree = parseProgram("fn f(n) { return f(n + 1); }");
  ASSERT_TRUE(Tree.hasValue());
  Expected<int64_t> V = runProgram(*Tree, "f", {0});
  ASSERT_FALSE(V.hasValue());
  // Either limit may fire first depending on constants; both are fine.
  EXPECT_NE(V.message().find("limit"), std::string::npos);
}

TEST(InterpreterTest, FibonacciBothWays) {
  const char *Iterative =
      "fn fib(n) { let a = 0; let b = 1; "
      "while (n != 0) { let t = b; b = a + b; a = t; n = n - 1; } "
      "return a; }";
  const char *Recursive = "fn fib(n) { if (n < 2) { return n; } "
                          "return fib(n - 1) + fib(n - 2); }";
  for (int64_t N : {0, 1, 2, 5, 10, 15})
    EXPECT_EQ(run(Iterative, "fib", {N}), run(Recursive, "fib", {N}));
  EXPECT_EQ(run(Iterative, "fib", {10}), 55);
}

TEST(InterpreterTest, NestedLoops) {
  const char *Sum2d =
      "fn sum(n, m) { let total = 0; let i = 0; "
      "while (i < n) { let j = 0; "
      "while (j < m) { total = total + i * j; j = j + 1; } "
      "i = i + 1; } return total; }";
  // sum over i<3, j<4 of i*j = (0+1+2)*(0+1+2+3) = 18.
  EXPECT_EQ(run(Sum2d, "sum", {3, 4}), 18);
  EXPECT_EQ(run(Sum2d, "sum", {0, 9}), 0);
}
