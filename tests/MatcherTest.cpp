//===- tests/MatcherTest.cpp - SAM and maximal-match discovery -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Matcher.h"
#include "core/SuffixAutomaton.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace kast;

namespace {

using Seq = std::vector<uint32_t>;

/// Converts a character string to a symbol sequence (ASCII ids).
Seq seq(const std::string &S) {
  Seq Out;
  for (char C : S)
    Out.push_back(static_cast<uint32_t>(C));
  return Out;
}

/// Brute-force factor check.
bool containsNaive(const Seq &Text, const Seq &Factor) {
  if (Factor.empty())
    return true;
  if (Factor.size() > Text.size())
    return false;
  for (size_t I = 0; I + Factor.size() <= Text.size(); ++I)
    if (std::equal(Factor.begin(), Factor.end(), Text.begin() + I))
      return true;
  return false;
}

/// Random sequence over a small alphabet (repetition-rich).
Seq randomSeq(Rng &R, size_t Length, uint32_t Alphabet) {
  Seq Out;
  Out.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    Out.push_back(static_cast<uint32_t>(R.uniformInt(0, Alphabet - 1)));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// SuffixAutomaton
//===----------------------------------------------------------------------===//

TEST(SuffixAutomatonTest, ContainsAllFactors) {
  Seq Text = seq("abcbcba");
  SuffixAutomaton Sam(Text);
  for (size_t I = 0; I < Text.size(); ++I)
    for (size_t J = I + 1; J <= Text.size(); ++J) {
      Seq Factor(Text.begin() + I, Text.begin() + J);
      EXPECT_TRUE(Sam.containsFactor(Factor));
    }
}

TEST(SuffixAutomatonTest, RejectsNonFactors) {
  SuffixAutomaton Sam(seq("aabab"));
  EXPECT_FALSE(Sam.containsFactor(seq("bb")));
  EXPECT_FALSE(Sam.containsFactor(seq("abc")));
  EXPECT_FALSE(Sam.containsFactor(seq("aaa")));
  EXPECT_TRUE(Sam.containsFactor(seq("aba")));
}

TEST(SuffixAutomatonTest, EmptyFactorAlwaysContained) {
  SuffixAutomaton Sam(seq("xy"));
  EXPECT_TRUE(Sam.containsFactor({}));
}

TEST(SuffixAutomatonTest, StateCountIsLinear) {
  Seq Text = seq("abcabcabcabcab");
  SuffixAutomaton Sam(Text);
  EXPECT_LE(Sam.numStates(), 2 * Text.size());
}

TEST(SuffixAutomatonTest, FactorPropertyOnRandomInputs) {
  Rng R(123);
  for (int Round = 0; Round < 20; ++Round) {
    Seq Text = randomSeq(R, 60, 3);
    SuffixAutomaton Sam(Text);
    for (int Probe = 0; Probe < 30; ++Probe) {
      Seq Factor = randomSeq(R, R.uniformInt(1, 6), 3);
      EXPECT_EQ(Sam.containsFactor(Factor), containsNaive(Text, Factor));
    }
  }
}

TEST(SuffixAutomatonTest, MatchingStatisticsEndsKnownCase) {
  // Y = "ab", X = "cabd": longest suffix of X[..j] in Y: 0,1,2,0.
  SuffixAutomaton Sam(seq("ab"));
  std::vector<size_t> MS = Sam.matchingStatisticsEnds(seq("cabd"));
  EXPECT_EQ(MS, (std::vector<size_t>{0, 1, 2, 0}));
}

TEST(SuffixAutomatonTest, MatchingStatisticsAgainstNaive) {
  Rng R(321);
  for (int Round = 0; Round < 20; ++Round) {
    Seq Y = randomSeq(R, 40, 3);
    Seq X = randomSeq(R, 30, 3);
    SuffixAutomaton Sam(Y);
    std::vector<size_t> MS = Sam.matchingStatisticsEnds(X);
    for (size_t J = 0; J < X.size(); ++J) {
      // Naive: longest suffix of X[0..J] occurring in Y.
      size_t Best = 0;
      for (size_t L = 1; L <= J + 1; ++L) {
        Seq Suffix(X.begin() + (J + 1 - L), X.begin() + (J + 1));
        if (containsNaive(Y, Suffix))
          Best = L;
        else
          break; // Longer suffixes only get harder.
      }
      EXPECT_EQ(MS[J], Best) << "round " << Round << " position " << J;
    }
  }
}

//===----------------------------------------------------------------------===//
// Matching statistics (start-based) and maximal matches
//===----------------------------------------------------------------------===//

TEST(MatcherTest, StartStatisticsKnownCase) {
  // Subject "abcd", partner "bcx": prefixes starting at each i
  // occurring in partner: a->0, bc->2, c->1, d->0.
  Seq Subject = seq("abcd");
  SuffixAutomaton RevPartner(reversed(seq("bcx")));
  std::vector<size_t> MS = matchingStatisticsStarts(Subject, RevPartner);
  EXPECT_EQ(MS, (std::vector<size_t>{0, 2, 1, 0}));
}

TEST(MatcherTest, MaximalMatchesSimple) {
  // Subject "xaby", partner "zabw": only "ab" is shared and maximal.
  Seq Subject = seq("xaby");
  SuffixAutomaton RevPartner(reversed(seq("zabw")));
  std::vector<MaximalMatch> M = findMaximalMatches(Subject, RevPartner);
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].Begin, 1u);
  EXPECT_EQ(M[0].End, 3u);
}

TEST(MatcherTest, SelfMatchIsWholeString) {
  // Against itself, every interval extends: only the full string is
  // maximal — the property that makes k(A,A) = weight(A)^2.
  Seq S = seq("abcabc");
  SuffixAutomaton RevSelf(reversed(S));
  std::vector<MaximalMatch> M = findMaximalMatches(S, RevSelf);
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].Begin, 0u);
  EXPECT_EQ(M[0].length(), S.size());
}

TEST(MatcherTest, DisjointSequencesShareNothing) {
  Seq Subject = seq("aaa");
  SuffixAutomaton RevPartner(reversed(seq("bbb")));
  EXPECT_TRUE(findMaximalMatches(Subject, RevPartner).empty());
}

TEST(MatcherTest, OverlappingWindowsBothReported) {
  // Subject "aba", partner "ab" and "ba" both occur; windows [0,2) and
  // [1,3) are each maximal ("aba" does not occur in partner "abba"?).
  Seq Subject = seq("aba");
  SuffixAutomaton RevPartner(reversed(seq("abba")));
  std::vector<MaximalMatch> M = findMaximalMatches(Subject, RevPartner);
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0], (MaximalMatch{0, 2}));
  EXPECT_EQ(M[1], (MaximalMatch{1, 3}));
}

TEST(MatcherTest, DPAndSamAgreeOnKnownCases) {
  const std::pair<std::string, std::string> Cases[] = {
      {"abcabc", "cabca"}, {"aaaa", "aa"},     {"xyz", "xyz"},
      {"ab", "ba"},        {"abab", "babab"},  {"a", "a"},
      {"abc", "def"},      {"aabbaa", "abba"},
  };
  for (const auto &[S, P] : Cases) {
    Seq Subject = seq(S), Partner = seq(P);
    SuffixAutomaton RevPartner(reversed(Partner));
    EXPECT_EQ(findMaximalMatches(Subject, RevPartner),
              findMaximalMatchesDP(Subject, Partner))
        << "subject=" << S << " partner=" << P;
  }
}

// Differential property sweep: the SAM path and the DP oracle must
// agree on random repetition-rich inputs of varying sizes/alphabets.
struct MatcherSweepParams {
  size_t SubjectLength;
  size_t PartnerLength;
  uint32_t Alphabet;
};

class MatcherSweep : public ::testing::TestWithParam<MatcherSweepParams> {};

TEST_P(MatcherSweep, SamMatchesDPOracle) {
  const MatcherSweepParams &P = GetParam();
  Rng R(P.SubjectLength * 1000003 + P.PartnerLength * 101 + P.Alphabet);
  for (int Round = 0; Round < 25; ++Round) {
    Seq Subject = randomSeq(R, P.SubjectLength, P.Alphabet);
    Seq Partner = randomSeq(R, P.PartnerLength, P.Alphabet);
    SuffixAutomaton RevPartner(reversed(Partner));
    EXPECT_EQ(findMaximalMatches(Subject, RevPartner),
              findMaximalMatchesDP(Subject, Partner));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatcherSweep,
    ::testing::Values(MatcherSweepParams{5, 5, 2},
                      MatcherSweepParams{20, 20, 2},
                      MatcherSweepParams{20, 20, 4},
                      MatcherSweepParams{50, 30, 3},
                      MatcherSweepParams{30, 50, 3},
                      MatcherSweepParams{100, 100, 5},
                      MatcherSweepParams{1, 100, 2},
                      MatcherSweepParams{100, 1, 2}));

//===----------------------------------------------------------------------===//
// Maximal-match semantic properties
//===----------------------------------------------------------------------===//

TEST(MatcherTest, MaximalWindowsAreNonExtendable) {
  Rng R(777);
  for (int Round = 0; Round < 30; ++Round) {
    Seq Subject = randomSeq(R, 40, 3);
    Seq Partner = randomSeq(R, 40, 3);
    SuffixAutomaton RevPartner(reversed(Partner));
    for (const MaximalMatch &M :
         findMaximalMatches(Subject, RevPartner)) {
      Seq Window(Subject.begin() + M.Begin, Subject.begin() + M.End);
      EXPECT_TRUE(containsNaive(Partner, Window));
      if (M.Begin > 0) {
        Seq Left(Subject.begin() + M.Begin - 1, Subject.begin() + M.End);
        EXPECT_FALSE(containsNaive(Partner, Left));
      }
      if (M.End < Subject.size()) {
        Seq Right(Subject.begin() + M.Begin, Subject.begin() + M.End + 1);
        EXPECT_FALSE(containsNaive(Partner, Right));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// findOccurrences
//===----------------------------------------------------------------------===//

TEST(OccurrencesTest, OverlappingOccurrences) {
  EXPECT_EQ(findOccurrences(seq("aaaa"), seq("aa")),
            (std::vector<size_t>{0, 1, 2}));
}

TEST(OccurrencesTest, NoMatch) {
  EXPECT_TRUE(findOccurrences(seq("abc"), seq("d")).empty());
  EXPECT_TRUE(findOccurrences(seq("ab"), seq("abc")).empty());
  EXPECT_TRUE(findOccurrences(seq("ab"), {}).empty());
}

TEST(OccurrencesTest, FullStringMatch) {
  EXPECT_EQ(findOccurrences(seq("abc"), seq("abc")),
            (std::vector<size_t>{0}));
}
