//===- tests/IndexServiceTest.cpp - concurrent serving layer ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving contract of index/IndexService: adds and removes publish
// atomically and agree with ProfileIndex ground truth, snapshots are
// immutable (they answer identically forever, through concurrent
// writes and compactions), sharded caches restart a service bit-exactly,
// and the whole thing holds up under ASan/UBSan with writers and
// readers interleaving freely.
//
//===----------------------------------------------------------------------===//

#include "index/IndexService.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/CorpusIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// N profiles with unique names "<prefix><i>" and labels cycling
/// through "a"/"b"/"c".
struct NamedProfiles {
  std::vector<std::string> Names;
  std::vector<std::string> Labels;
  std::vector<KernelProfile> Profiles;
};

NamedProfiles makeProfiles(const ProfiledStringKernel &Kernel, size_t N,
                           const std::string &Prefix, uint64_t Seed) {
  Rng R(Seed);
  auto Table = TokenTable::create();
  NamedProfiles Out;
  const char *Cycle[] = {"a", "b", "c"};
  for (size_t I = 0; I < N; ++I) {
    Out.Names.push_back(Prefix + std::to_string(I));
    Out.Labels.push_back(Cycle[I % 3]);
    Out.Profiles.push_back(
        Kernel.profile(randomString(Table, R, R.uniformInt(4, 24), 6)));
  }
  return Out;
}

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// (name, similarity) pairs of service hits, for ground-truth compares.
std::vector<std::pair<std::string, double>>
flatten(const std::vector<ServiceHit> &Hits) {
  std::vector<std::pair<std::string, double>> Out;
  for (const ServiceHit &H : Hits)
    Out.push_back({H.Name, H.Similarity});
  return Out;
}

std::vector<std::pair<std::string, double>>
flatten(const ProfileIndex &Index, const std::vector<Neighbor> &Hits) {
  std::vector<std::pair<std::string, double>> Out;
  for (const Neighbor &H : Hits)
    Out.push_back({Index.name(H.Index), H.Similarity});
  return Out;
}

//===----------------------------------------------------------------------===//
// Single-threaded correctness against ProfileIndex ground truth
//===----------------------------------------------------------------------===//

TEST(IndexServiceTest, AddsPublishImmediatelyAndMatchProfileIndex) {
  // Small shards and a tiny seal threshold so the test crosses every
  // structural boundary: staging tails, sealed segments, multi-shard
  // merges.
  IndexServiceOptions Options;
  Options.Shards = 3;
  Options.SealThreshold = 4;
  IndexService Service(kernel().name(), Options);
  ProfileIndex Truth(kernel().name());

  NamedProfiles P = makeProfiles(kernel(), 30, "s", 11);
  for (size_t I = 0; I < P.Profiles.size(); ++I) {
    Service.add(P.Names[I], P.Labels[I], P.Profiles[I]);
    Truth.add(P.Names[I], P.Labels[I], P.Profiles[I]);
    EXPECT_EQ(Service.size(), I + 1); // Visible as soon as add returns.
  }
  EXPECT_EQ(Service.kernelName(), kernel().name());
  EXPECT_EQ(Service.shardCount(), 3u);

  // Similarities are computed by the same merge-join over the same
  // bit patterns, so service hits must match the index hit-for-hit
  // (random profiles make cross-shard ties vanishingly unlikely).
  NamedProfiles Q = makeProfiles(kernel(), 8, "q", 12);
  for (bool Normalize : {true, false})
    for (const KernelProfile &Query : Q.Profiles)
      EXPECT_EQ(flatten(Service.query(Query, 5, Normalize, 1)),
                flatten(Truth, Truth.query(Query, 5, Normalize)));

  // Batched equals single, through one snapshot.
  std::vector<std::vector<ServiceHit>> Batch =
      Service.queryBatch(Q.Profiles, 4, true, 2);
  IndexSnapshot Snap = Service.snapshot();
  ASSERT_EQ(Batch.size(), Q.Profiles.size());
  for (size_t I = 0; I < Q.Profiles.size(); ++I)
    EXPECT_EQ(Batch[I], Snap.query(Q.Profiles[I], 4, true, 1));
}

TEST(IndexServiceTest, EdgeCasesReturnCleanly) {
  IndexService Service("k", {.Shards = 2, .SealThreshold = 2});
  KernelProfile P;
  P.add(3, 1.0);
  P.finalize();

  EXPECT_TRUE(Service.empty());
  EXPECT_TRUE(Service.query(P, 5).empty());
  EXPECT_EQ(Service.remove("missing"), 0u);
  Service.compact(1); // Compacting empty shards is a no-op, not a crash.
  EXPECT_TRUE(Service.snapshot().empty());

  Service.add("only", "l", P);
  EXPECT_TRUE(Service.query(P, 0).empty());          // K == 0.
  EXPECT_EQ(Service.query(P, 100).size(), 1u);       // K clamps to live.
  std::vector<std::vector<ServiceHit>> Batch =
      Service.queryBatch({P, KernelProfile()}, 3, true, 1);
  ASSERT_EQ(Batch.size(), 2u);
  EXPECT_EQ(Batch[0].size(), 1u);
  // An empty query has vanishing norm; cosine scores zero but the
  // entry is still returned.
  ASSERT_EQ(Batch[1].size(), 1u);
  EXPECT_EQ(Batch[1][0].Similarity, 0.0);

  EXPECT_EQ(IndexSnapshot::majorityLabel({}), "");
}

TEST(IndexServiceTest, MajorityLabelMatchesIndexContract) {
  // Same single-pass vote as ProfileIndex::majorityLabel: totals win,
  // count ties go to the nearer hit's label.
  std::vector<ServiceHit> Hits = {{"n0", "y", 0.9},
                                  {"n1", "x", 0.8},
                                  {"n2", "x", 0.7},
                                  {"n3", "y", 0.6}};
  EXPECT_EQ(IndexSnapshot::majorityLabel(Hits), "y");
  Hits.push_back({"n4", "x", 0.5});
  EXPECT_EQ(IndexSnapshot::majorityLabel(Hits), "x");
}

//===----------------------------------------------------------------------===//
// Removal, compaction, snapshot isolation
//===----------------------------------------------------------------------===//

TEST(IndexServiceTest, RemoveTombstonesAndSnapshotsStayIsolated) {
  IndexServiceOptions Options;
  Options.Shards = 2;
  Options.SealThreshold = 4;
  IndexService Service(kernel().name(), Options);
  NamedProfiles P = makeProfiles(kernel(), 16, "s", 21);
  for (size_t I = 0; I < P.Profiles.size(); ++I)
    Service.add(P.Names[I], P.Labels[I], P.Profiles[I]);

  const KernelProfile &Query = P.Profiles[5];
  IndexSnapshot Before = Service.snapshot();
  std::vector<ServiceHit> BeforeHits = Before.query(Query, 16, true, 1);
  ASSERT_EQ(BeforeHits.size(), 16u);
  // The query profile's own entry is the (cosine 1) top hit.
  EXPECT_EQ(BeforeHits[0].Name, "s5");

  EXPECT_EQ(Service.remove("s5"), 1u);
  EXPECT_EQ(Service.remove("s5"), 0u); // Already tombstoned.
  EXPECT_EQ(Service.size(), 15u);

  // Live queries no longer see the entry, at any K.
  for (const ServiceHit &H : Service.query(Query, 16, true, 1))
    EXPECT_NE(H.Name, "s5");
  // The pre-removal snapshot still answers exactly as before.
  EXPECT_EQ(Before.query(Query, 16, true, 1), BeforeHits);
  EXPECT_EQ(Before.size(), 16u);

  // Compaction drops tombstones without changing any answer...
  std::vector<ServiceHit> PreCompact = Service.query(Query, 15, true, 1);
  Service.compact(1);
  EXPECT_EQ(Service.size(), 15u);
  EXPECT_EQ(Service.query(Query, 15, true, 1), PreCompact);
  // ...and pre-compaction snapshots keep the old segments alive.
  EXPECT_EQ(Before.query(Query, 16, true, 1), BeforeHits);

  // Re-adding a removed name serves it again (a fresh entry, not a
  // resurrection of the tombstoned one).
  Service.add("s5", P.Labels[5], P.Profiles[5]);
  EXPECT_EQ(Service.size(), 16u);
  EXPECT_EQ(Service.query(Query, 1, true, 1)[0].Name, "s5");
}

//===----------------------------------------------------------------------===//
// Bulk import/export and the sharded-cache restart path
//===----------------------------------------------------------------------===//

TEST(IndexServiceTest, FromIndexServesTheWholeIndex) {
  NamedProfiles P = makeProfiles(kernel(), 20, "s", 31);
  ProfileIndex Index(kernel().name());
  for (size_t I = 0; I < P.Profiles.size(); ++I)
    Index.add(P.Names[I], P.Labels[I], P.Profiles[I]);

  IndexService Service =
      IndexService::fromIndex(Index, {.Shards = 4, .SealThreshold = 8});
  EXPECT_EQ(Service.size(), Index.size());
  EXPECT_EQ(Service.kernelName(), Index.kernelName());
  NamedProfiles Q = makeProfiles(kernel(), 6, "q", 32);
  for (const KernelProfile &Query : Q.Profiles)
    EXPECT_EQ(flatten(Service.query(Query, 5, true, 1)),
              flatten(Index, Index.query(Query, 5)));
}

TEST(IndexServiceTest, ShardCachesRestartTheServiceBitExactly) {
  IndexServiceOptions Options;
  Options.Shards = 3;
  Options.SealThreshold = 4;
  IndexService Service(kernel().name(), Options);
  NamedProfiles P = makeProfiles(kernel(), 18, "s", 41);
  for (size_t I = 0; I < P.Profiles.size(); ++I)
    Service.add(P.Names[I], P.Labels[I], P.Profiles[I]);
  // Mix a removal in so the export path must drop tombstones.
  ASSERT_EQ(Service.remove("s7"), 1u);

  std::string Dir = testing::TempDir() + "/kast_service_restart";
  std::filesystem::remove_all(Dir);
  ASSERT_TRUE(
      writeShardedProfileCaches(Service.toShardCaches(), Dir).ok());

  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileCaches(Dir, kernel().name());
  ASSERT_TRUE(Caches.hasValue()) << Caches.message();
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take());
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();

  EXPECT_EQ(Restored->size(), Service.size());
  EXPECT_EQ(Restored->shardCount(), Service.shardCount());
  EXPECT_EQ(Restored->kernelName(), Service.kernelName());
  NamedProfiles Q = makeProfiles(kernel(), 6, "q", 42);
  for (const KernelProfile &Query : Q.Profiles)
    EXPECT_EQ(Restored->query(Query, 6, true, 1),
              Service.query(Query, 6, true, 1));
  // Name-hash routing survived the round trip: remove still lands.
  EXPECT_EQ(Restored->remove("s3"), 1u);
  EXPECT_EQ(Restored->size(), Service.size() - 1);

  // Kernel-name mismatches fail at restore, not as wrong similarity.
  std::vector<ProfileStoreCache> Bad(2);
  Bad[0].KernelName = "one";
  Bad[1].KernelName = "two";
  EXPECT_FALSE(IndexService::fromShardCaches(std::move(Bad)).hasValue());
  EXPECT_FALSE(IndexService::fromShardCaches({}).hasValue());
}

TEST(IndexServiceTest, ForeignCacheLayoutsSweepAllShardsOnRemove) {
  // A hand-assembled layout can hold the same name in several shards,
  // off its hash route. Restore must detect that and remove() must
  // sweep every shard instead of trusting the home-shard invariant.
  KernelProfile P;
  P.add(3, 1.0);
  P.finalize();
  std::vector<ProfileStoreCache> Caches(2);
  for (size_t S = 0; S < 2; ++S) {
    Caches[S].KernelName = "k";
    Caches[S].Store.append(P);
    Caches[S].Names.push_back("dup"); // In both shards: one is off-route.
    Caches[S].Labels.push_back("l");
  }
  Expected<IndexService> Service =
      IndexService::fromShardCaches(std::move(Caches));
  ASSERT_TRUE(Service.hasValue()) << Service.message();
  EXPECT_EQ(Service->size(), 2u);
  EXPECT_EQ(Service->remove("dup"), 2u); // Both copies, both shards.
  EXPECT_EQ(Service->size(), 0u);
  // entryCount keeps counting the tombstoned entries until compact.
  EXPECT_EQ(Service->entryCount(), 2u);
  Service->compact(1);
  EXPECT_EQ(Service->entryCount(), 0u);
}

TEST(IndexServiceTest, ResavingFewerShardsSweepsStaleCacheFiles) {
  // Saving a 2-shard service into a directory that previously held 3
  // shards must not leave the old shard-002 behind, or the next
  // restart would serve the stale corpus alongside the new one.
  KernelProfile P;
  P.add(5, 2.0);
  P.finalize();
  auto MakeService = [&](size_t Shards, size_t Entries) {
    IndexService Service("k", {.Shards = Shards});
    for (size_t I = 0; I < Entries; ++I)
      Service.add("n" + std::to_string(I), "l", P);
    return Service;
  };
  std::string Dir = testing::TempDir() + "/kast_shard_resave";
  std::filesystem::remove_all(Dir);
  IndexService Wide = MakeService(3, 6);
  ASSERT_TRUE(writeShardedProfileCaches(Wide.toShardCaches(), Dir).ok());
  IndexService Narrow = MakeService(2, 4);
  ASSERT_TRUE(writeShardedProfileCaches(Narrow.toShardCaches(), Dir).ok());

  EXPECT_FALSE(std::filesystem::exists(Dir + "/shard-002.kpc"));
  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileCaches(Dir, "k");
  ASSERT_TRUE(Caches.hasValue()) << Caches.message();
  ASSERT_EQ(Caches->size(), 2u);
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take());
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  EXPECT_EQ(Restored->size(), 4u);
}

//===----------------------------------------------------------------------===//
// v3 flat-image restart
//===----------------------------------------------------------------------===//

TEST(IndexServiceTest, V3ImagesRestartTheServiceBitExactly) {
  IndexServiceOptions Options;
  Options.Shards = 3;
  Options.SealThreshold = 4;
  IndexService Service(kernel().name(), Options);
  NamedProfiles P = makeProfiles(kernel(), 18, "s", 61);
  for (size_t I = 0; I < P.Profiles.size(); ++I)
    Service.add(P.Names[I], P.Labels[I], P.Profiles[I]);
  ASSERT_EQ(Service.remove("s5"), 1u);

  // The same export, persisted through both formats.
  std::string V2Dir = testing::TempDir() + "/kast_restart_v2";
  std::string V3Dir = testing::TempDir() + "/kast_restart_v3";
  std::filesystem::remove_all(V2Dir);
  std::filesystem::remove_all(V3Dir);
  std::vector<ProfileStoreCache> Exported = Service.toShardCaches();
  ASSERT_TRUE(writeShardedProfileCaches(Exported, V2Dir).ok());
  ASSERT_TRUE(writeShardedProfileImages(Exported, V3Dir).ok());

  Expected<std::vector<ProfileStoreCache>> V2 =
      loadShardedProfileCaches(V2Dir, kernel().name());
  ASSERT_TRUE(V2.hasValue()) << V2.message();
  Expected<std::vector<ProfileStoreCache>> V3 =
      loadShardedProfileImages(V3Dir, kernel().name());
  ASSERT_TRUE(V3.hasValue()) << V3.message();

  Expected<IndexService> FromV2 = IndexService::fromShardCaches(V2.take());
  ASSERT_TRUE(FromV2.hasValue()) << FromV2.message();
  Expected<IndexService> FromV3 = IndexService::fromShardCaches(V3.take());
  ASSERT_TRUE(FromV3.hasValue()) << FromV3.message();

  // The mmap-restored service answers bit-identically to the v2
  // restore and to the original.
  EXPECT_EQ(FromV3->size(), Service.size());
  NamedProfiles Q = makeProfiles(kernel(), 6, "q", 62);
  for (const KernelProfile &Query : Q.Profiles) {
    std::vector<ServiceHit> Truth = Service.query(Query, 6, true, 1);
    EXPECT_EQ(FromV2->query(Query, 6, true, 1), Truth);
    EXPECT_EQ(FromV3->query(Query, 6, true, 1), Truth);
  }
}

TEST(IndexServiceTest, V3ImagesCarryRoutingAndSurviveWriters) {
  IndexServiceOptions Options;
  Options.Shards = 2;
  Options.SealThreshold = 4;
  IndexService Service(kernel().name(), Options);
  NamedProfiles P = makeProfiles(kernel(), 40, "s", 71);
  for (size_t I = 0; I < P.Profiles.size(); ++I)
    Service.add(P.Names[I], P.Labels[I], P.Profiles[I]);
  RoutingOptions Route;
  Route.Cluster.NumCentroids = 4;
  Route.MaxDocFrequency = 0.6;
  Route.DefaultNProbe = 2;
  Route.RerankBudget = 12;
  Route.QuantizedShortlist = true;
  Service.rebuildRouting(Route, 1);
  ASSERT_EQ(Service.snapshot().routedShardCount(), Options.Shards);

  // The export carries the routing tier as flat arena views and the
  // quantized store — no separate "shard-NNN.route" files needed.
  std::vector<ProfileStoreCache> Exported = Service.toShardCaches();
  for (const ProfileStoreCache &Cache : Exported) {
    ASSERT_NE(Cache.Routing, nullptr);
    EXPECT_EQ(Cache.Routing->Covered, Cache.Store.size());
    EXPECT_NE(Cache.Store.quantized(), nullptr);
  }
  std::string Dir = testing::TempDir() + "/kast_restart_routed_v3";
  std::filesystem::remove_all(Dir);
  ASSERT_TRUE(writeShardedProfileImages(Exported, Dir).ok());

  Expected<std::vector<ProfileStoreCache>> Images =
      loadShardedProfileImages(Dir, kernel().name());
  ASSERT_TRUE(Images.hasValue()) << Images.message();
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Images.take(), Options);
  ASSERT_TRUE(Restored.hasValue()) << Restored.message();
  EXPECT_EQ(Restored->snapshot().routedShardCount(), Options.Shards);

  // Routed (pruned, quantized-shortlist) answers match the original
  // service bit for bit — router, postings, and int8 codes all came
  // through the image.
  NamedProfiles Q = makeProfiles(kernel(), 5, "q", 72);
  for (const KernelProfile &Query : Q.Profiles)
    EXPECT_EQ(Restored->queryApprox(Query, 5, true, 0, 1),
              Service.queryApprox(Query, 5, true, 0, 1));

  // Writers on the restored service must not disturb the mapped
  // segments: adds stage beside them, removes tombstone them, and a
  // pre-mutation snapshot keeps answering identically.
  IndexSnapshot Before = Restored->snapshot();
  std::vector<ServiceHit> Pinned = Before.query(Q.Profiles[0], 5, true, 1);
  NamedProfiles Extra = makeProfiles(kernel(), 8, "x", 73);
  for (size_t I = 0; I < Extra.Profiles.size(); ++I)
    Restored->add(Extra.Names[I], Extra.Labels[I], Extra.Profiles[I]);
  ASSERT_EQ(Restored->remove(P.Names[2]), 1u);
  EXPECT_EQ(Before.query(Q.Profiles[0], 5, true, 1), Pinned);
  EXPECT_EQ(Restored->size(), P.Profiles.size() + Extra.Profiles.size() - 1);

  // Compaction rebuilds owned arenas (promoting away from the mapped
  // image entirely) and the service still answers exactly.
  Restored->compact(1);
  for (const KernelProfile &Query : Q.Profiles) {
    std::vector<ServiceHit> Exact = Restored->query(Query, 5, true, 1);
    EXPECT_EQ(Restored->queryApprox(Query, 5, true, 0, 1), Exact);
  }
}

TEST(IndexServiceTest, EmbeddedRoutingMismatchFailsRestore) {
  // Routing arenas paired with contents they were not fitted on
  // (here: a truncated copy of the shard) must fail loudly at restore.
  IndexService Service("k", {.Shards = 1});
  KernelProfile P;
  P.add(3, 1.0);
  P.finalize();
  for (size_t I = 0; I < 6; ++I)
    Service.add("n" + std::to_string(I), "l", P);
  RoutingOptions Route;
  Route.Cluster.NumCentroids = 2;
  Service.rebuildRouting(Route, 1);
  std::vector<ProfileStoreCache> Exported = Service.toShardCaches();
  ASSERT_EQ(Exported.size(), 1u);
  ASSERT_NE(Exported[0].Routing, nullptr);

  // Drop one profile but keep the arenas.
  ProfileStoreCache Stale;
  Stale.KernelName = Exported[0].KernelName;
  Stale.Routing = Exported[0].Routing;
  for (size_t I = 0; I + 1 < Exported[0].Store.size(); ++I) {
    Stale.Store.appendFrom(Exported[0].Store, I);
    Stale.Names.push_back(Exported[0].Names[I]);
    Stale.Labels.push_back(Exported[0].Labels[I]);
  }
  Expected<IndexService> Bad = IndexService::fromShardCaches({Stale});
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.message().find("does not match"), std::string::npos)
      << Bad.message();
}

//===----------------------------------------------------------------------===//
// Concurrency stress: snapshot consistency under add/remove/query
//===----------------------------------------------------------------------===//

TEST(IndexServiceStressTest, SnapshotsStayConsistentUnderConcurrentWrites) {
  // Writers interleave adds and removes while readers continuously
  // snapshot and query. The contract under test: a snapshot answers
  // identically no matter when it is re-queried — mid-churn, from
  // another thread, or after the system quiesces. Runs under the
  // KAST_SANITIZE ASan/UBSan CI job like every other test, which is
  // where a torn publish or use-after-invalidate would surface.
  constexpr size_t Writers = 2;
  constexpr size_t Readers = 2;
  constexpr size_t PerWriter = 60;

  IndexServiceOptions Options;
  Options.Shards = 4;
  Options.SealThreshold = 8;
  IndexService Service(kernel().name(), Options);

  std::vector<NamedProfiles> WriterWork;
  for (size_t W = 0; W < Writers; ++W)
    WriterWork.push_back(
        makeProfiles(kernel(), PerWriter, "w" + std::to_string(W) + "-",
                     100 + W));
  NamedProfiles Q = makeProfiles(kernel(), 4, "q", 200);

  std::atomic<size_t> WritersDone{0};
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Writers; ++W) {
    Threads.emplace_back([&, W] {
      const NamedProfiles &Work = WriterWork[W];
      for (size_t I = 0; I < Work.Profiles.size(); ++I) {
        Service.add(Work.Names[I], Work.Labels[I], Work.Profiles[I]);
        // Every 7th entry is removed again a few adds later; every
        // 25th add triggers a compaction, so the readers race against
        // tombstoning and arena rebuilds too, not just appends.
        if (I % 7 == 6) {
          EXPECT_EQ(Service.remove(Work.Names[I - 3]), 1u);
        }
        if (I % 25 == 24)
          Service.compact(1);
      }
      WritersDone.fetch_add(1);
    });
  }

  struct Observation {
    IndexSnapshot Snap;
    size_t Size = 0;
    std::vector<std::vector<ServiceHit>> Results;
  };
  std::vector<std::vector<Observation>> Retained(Readers);
  for (size_t R = 0; R < Readers; ++R) {
    Threads.emplace_back([&, R] {
      size_t Iteration = 0;
      // At least one iteration even if the writers win the race to
      // finish, so every reader retains at least one observation.
      do {
        IndexSnapshot Snap = Service.snapshot();
        const size_t Size = Snap.size();
        std::vector<std::vector<ServiceHit>> First =
            Snap.queryBatch(Q.Profiles, 5, true, 1);
        // Immediate re-query of the same snapshot: identical top-k,
        // identical size, whatever the writers are doing meanwhile.
        EXPECT_EQ(Snap.queryBatch(Q.Profiles, 5, true, 1), First);
        EXPECT_EQ(Snap.size(), Size);
        for (const std::vector<ServiceHit> &Hits : First) {
          EXPECT_LE(Hits.size(), std::min<size_t>(5, Size));
          for (size_t H = 1; H < Hits.size(); ++H)
            EXPECT_GE(Hits[H - 1].Similarity, Hits[H].Similarity);
        }
        if (Iteration++ % 8 == 0)
          Retained[R].push_back({std::move(Snap), Size, std::move(First)});
      } while (WritersDone.load() < Writers);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Quiesced re-query of every retained snapshot: the acceptance
  // criterion — what a reader observed mid-churn is exactly what the
  // snapshot still answers now that all writers are gone.
  size_t Checked = 0;
  for (const std::vector<Observation> &PerReader : Retained)
    for (const Observation &O : PerReader) {
      EXPECT_EQ(O.Snap.size(), O.Size);
      EXPECT_EQ(O.Snap.queryBatch(Q.Profiles, 5, true, 1), O.Results);
      ++Checked;
    }
  EXPECT_GT(Checked, 0u);

  // Final ground truth: after the dust settles the service serves
  // exactly the survivors, bit-identically to a fresh ProfileIndex.
  ProfileIndex Truth(kernel().name());
  for (size_t W = 0; W < Writers; ++W) {
    const NamedProfiles &Work = WriterWork[W];
    for (size_t I = 0; I < Work.Profiles.size(); ++I) {
      const bool Removed = I % 7 == 3 && I + 3 < Work.Profiles.size() &&
                           (I + 3) % 7 == 6;
      if (!Removed)
        Truth.add(Work.Names[I], Work.Labels[I], Work.Profiles[I]);
    }
  }
  EXPECT_EQ(Service.size(), Truth.size());
  for (const KernelProfile &Query : Q.Profiles) {
    std::vector<std::pair<std::string, double>> Got =
        flatten(Service.query(Query, 5, true, 1));
    std::vector<std::pair<std::string, double>> Want =
        flatten(Truth, Truth.query(Query, 5));
    EXPECT_EQ(Got, Want);
  }
}

} // namespace
