//===- tests/TraceTest.cpp - trace library unit tests ----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"

#include <gtest/gtest.h>

using namespace kast;

//===----------------------------------------------------------------------===//
// Trace model
//===----------------------------------------------------------------------===//

TEST(TraceTest, OpKindRoundTrip) {
  for (OpKind K : {OpKind::Open, OpKind::Close, OpKind::Read, OpKind::Write,
                   OpKind::Lseek, OpKind::Fsync, OpKind::Fileno,
                   OpKind::Mmap, OpKind::Fscanf})
    EXPECT_EQ(opKindFromName(opKindName(K)), K);
  EXPECT_EQ(opKindFromName("pwrite64"), OpKind::Other);
}

TEST(TraceTest, HandlesInFirstAppearanceOrder) {
  Trace T;
  T.append(OpKind::Open, 7);
  T.append(OpKind::Open, 3);
  T.append(OpKind::Read, 7, 10);
  T.append(OpKind::Open, 9);
  std::vector<uint64_t> H = T.handles();
  ASSERT_EQ(H.size(), 3u);
  EXPECT_EQ(H[0], 7u);
  EXPECT_EQ(H[1], 3u);
  EXPECT_EQ(H[2], 9u);
}

TEST(TraceTest, WithoutBytesZeroesEverything) {
  Trace T("t");
  T.append(OpKind::Read, 1, 100);
  T.append(OpKind::Write, 1, 200);
  Trace Z = T.withoutBytes();
  for (const TraceEvent &E : Z.events())
    EXPECT_EQ(E.Bytes, 0u);
  // Original untouched.
  EXPECT_EQ(T.events()[0].Bytes, 100u);
}

TEST(TraceTest, FilteredDropsNegligibleOps) {
  Trace T;
  T.append(OpKind::Open, 1);
  T.append(OpKind::Fileno, 1);
  T.append(OpKind::Read, 1, 8);
  T.append(OpKind::Mmap, 1, 4096);
  T.append(OpKind::Fscanf, 1);
  T.append(OpKind::Close, 1);
  Trace F = T.filtered(Trace::defaultNegligibleOps());
  ASSERT_EQ(F.size(), 3u);
  EXPECT_EQ(F.events()[0].Op, "open");
  EXPECT_EQ(F.events()[1].Op, "read");
  EXPECT_EQ(F.events()[2].Op, "close");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(TraceParserTest, ParsesCanonicalLine) {
  Expected<std::optional<TraceEvent>> E =
      parseTraceLine("read 3 bytes=4096 addr=0x7f00");
  ASSERT_TRUE(E.hasValue());
  ASSERT_TRUE(E->has_value());
  EXPECT_EQ((*E)->Op, "read");
  EXPECT_EQ((*E)->Handle, 3u);
  EXPECT_EQ((*E)->Bytes, 4096u);
  EXPECT_EQ((*E)->Address, 0x7f00u);
}

TEST(TraceParserTest, ParsesPositionalBytes) {
  Expected<std::optional<TraceEvent>> E = parseTraceLine("write 5 1024");
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ((*E)->Bytes, 1024u);
}

TEST(TraceParserTest, LowercasesOpNames) {
  Expected<std::optional<TraceEvent>> E = parseTraceLine("READ 1");
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ((*E)->Op, "read");
}

TEST(TraceParserTest, SkipsBlankAndComments) {
  EXPECT_FALSE(parseTraceLine("").take().has_value());
  EXPECT_FALSE(parseTraceLine("   ").take().has_value());
  EXPECT_FALSE(parseTraceLine("# header").take().has_value());
  EXPECT_FALSE(parseTraceLine("  # indented comment").take().has_value());
}

TEST(TraceParserTest, TrailingCommentsStripped) {
  Expected<std::optional<TraceEvent>> E =
      parseTraceLine("read 1 bytes=2 # loop body");
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ((*E)->Bytes, 2u);
}

TEST(TraceParserTest, RejectsMalformedLines) {
  EXPECT_FALSE(parseTraceLine("read").hasValue());
  EXPECT_FALSE(parseTraceLine("read xyz").hasValue());
  EXPECT_FALSE(parseTraceLine("read 1 bytes=abc").hasValue());
  EXPECT_FALSE(parseTraceLine("read 1 addr=zz").hasValue());
  EXPECT_FALSE(parseTraceLine("re ad 1").hasValue());
  EXPECT_FALSE(parseTraceLine("read 1 2 3").hasValue()); // Two byte fields.
}

TEST(TraceParserTest, ParsesWholeDocumentWithLineNumbers) {
  const char *Doc = "# demo\n"
                    "open 3\n"
                    "read 3 bytes=100\n"
                    "close 3\n";
  Expected<Trace> T = parseTrace(Doc, "demo");
  ASSERT_TRUE(T.hasValue());
  EXPECT_EQ(T->name(), "demo");
  EXPECT_EQ(T->size(), 3u);
}

TEST(TraceParserTest, ErrorNamesOffendingLine) {
  Expected<Trace> T = parseTrace("open 1\nbroken line here ???\n");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.message().find("line 2"), std::string::npos);
}

TEST(TraceParserTest, MissingFileFails) {
  Expected<Trace> T = parseTraceFile("/nonexistent/path/trace.txt");
  EXPECT_FALSE(T.hasValue());
}

//===----------------------------------------------------------------------===//
// Writer round trip
//===----------------------------------------------------------------------===//

TEST(TraceWriterTest, FormatsCanonically) {
  TraceEvent E("read", 3, 4096, 0x7f00);
  EXPECT_EQ(formatTraceEvent(E), "read 3 bytes=4096 addr=0x7f00");
  TraceEvent NoExtras("close", 3);
  EXPECT_EQ(formatTraceEvent(NoExtras), "close 3");
}

TEST(TraceWriterTest, RoundTripsThroughParser) {
  Trace T("rt");
  T.append(OpKind::Open, 3);
  T.append(OpKind::Read, 3, 100, 0xabc);
  T.append(OpKind::Lseek, 3, 0);
  T.append(OpKind::Write, 3, 12345);
  T.append(OpKind::Close, 3);
  Expected<Trace> Back = parseTrace(formatTrace(T), "rt");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->events(), T.events());
}

TEST(TraceWriterTest, FileRoundTrip) {
  Trace T("file-rt");
  T.append(OpKind::Write, 9, 64);
  std::string Path = testing::TempDir() + "/kast_trace_rt.txt";
  ASSERT_TRUE(writeTraceFile(T, Path));
  Expected<Trace> Back = parseTraceFile(Path);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->events(), T.events());
  EXPECT_EQ(Back->name(), "kast_trace_rt.txt");
}
