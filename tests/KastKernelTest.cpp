//===- tests/KastKernelTest.cpp - The Kast Spectrum Kernel -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Includes a reconstruction of the paper's §3.2 worked example: two
/// strings sharing substrings S1 (3 tokens), S2 and S3 (1 token each)
/// with feature vectors f(A) = {19, 13, 15} and f(B) = {35, 11, 14},
/// string weights 64 and 52, kernel value 1018 and normalized value
/// 1018/3328 = 0.3059 at cut weight 4.
///
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/StringSerializer.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kast;

namespace {

/// Fixture building the worked-example strings.
///
///   A = s:4 m:8 u:7 f1:10 s:9 f2:9 u:4 f3:9 u:4      (weight 64)
///   B = s:6 m:4 u:7 g1:9 s:5 m:6 u:7 g2:8            (weight 52)
///
/// Shared substrings: S1 = "s m u" (A: 19; B: 17 + 18 = 35),
/// S2 = "s" (A: 4 + 9 = 13; B: 6 + 5 = 11; independent standalone
/// occurrence only in A), S3 = "u" (A: 7 + 4 + 4 = 15; B: 7 + 7 = 14;
/// two independent occurrences in A). "m" occurs in both strings but
/// only ever inside S1 occurrences, so it must NOT become a feature.
class WorkedExample : public ::testing::Test {
protected:
  void SetUp() override {
    Table = TokenTable::create();
    A = parseWeightedString("s:4 m:8 u:7 f1:10 s:9 f2:9 u:4 f3:9 u:4",
                            Table, "A")
            .take();
    B = parseWeightedString("s:6 m:4 u:7 g1:9 s:5 m:6 u:7 g2:8", Table,
                            "B")
            .take();
  }

  std::shared_ptr<TokenTable> Table;
  WeightedString A, B;
};

} // namespace

TEST_F(WorkedExample, StringWeightsMatchPaper) {
  EXPECT_EQ(A.totalWeight(), 64u);
  EXPECT_EQ(B.totalWeight(), 52u);
  // All tokens weigh >= 4, so weight_{w>=4} equals the total weight.
  EXPECT_EQ(A.filteredWeight(4), 64u);
  EXPECT_EQ(B.filteredWeight(4), 52u);
}

TEST_F(WorkedExample, ExactlyThreeFeatures) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  std::vector<KastFeature> F = K.features(A, B);
  ASSERT_EQ(F.size(), 3u);
}

TEST_F(WorkedExample, FeatureVectorsMatchPaper) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  std::vector<KastFeature> Features = K.features(A, B);

  // Index features by length for identification.
  const KastFeature *S1 = nullptr, *S2 = nullptr, *S3 = nullptr;
  for (const KastFeature &F : Features) {
    if (F.Literals.size() == 3)
      S1 = &F;
    else if (Table->literal(F.Literals[0]) == "s")
      S2 = &F;
    else if (Table->literal(F.Literals[0]) == "u")
      S3 = &F;
  }
  ASSERT_NE(S1, nullptr);
  ASSERT_NE(S2, nullptr);
  ASSERT_NE(S3, nullptr);

  // Eq. (3)-(10) of the paper.
  EXPECT_EQ(S1->WeightInA, 19u);
  EXPECT_EQ(S1->WeightInB, 35u);
  EXPECT_EQ(S1->CountInA, 1u);
  EXPECT_EQ(S1->CountInB, 2u);
  EXPECT_EQ(S2->WeightInA, 13u);
  EXPECT_EQ(S2->WeightInB, 11u);
  EXPECT_EQ(S3->WeightInA, 15u);
  EXPECT_EQ(S3->WeightInB, 14u);
}

TEST_F(WorkedExample, KernelValueIs1018) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  // Eq. (11): <{19,13,15}, {35,11,14}> = 1018.
  EXPECT_DOUBLE_EQ(K.evaluate(A, B), 1018.0);
}

TEST_F(WorkedExample, SelfKernelIsSquaredWeight) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  EXPECT_DOUBLE_EQ(K.evaluate(A, A), 64.0 * 64.0);
  EXPECT_DOUBLE_EQ(K.evaluate(B, B), 52.0 * 52.0);
}

TEST_F(WorkedExample, NormalizedValueMatchesEq12) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  // Eq. (12)-(13): 1018 / (64 * 52) = 0.3059.
  EXPECT_NEAR(K.evaluateNormalized(A, B), 1018.0 / 3328.0, 1e-12);
  EXPECT_NEAR(K.evaluateNormalized(A, B), 0.3059, 5e-5);
}

TEST_F(WorkedExample, NestedOnlySubstringIsNotAFeature) {
  // "m" appears in both strings but never independently.
  KastSpectrumKernel K({/*CutWeight=*/4});
  for (const KastFeature &F : K.features(A, B))
    if (F.Literals.size() == 1) {
      EXPECT_NE(Table->literal(F.Literals[0]), "m");
    }
}

TEST_F(WorkedExample, HigherCutDropsLightOccurrences) {
  // Cut 8 (per occurrence): S2 loses its B occurrences (6 and 5) and
  // S3 all of its occurrences; only S1 survives: 19 * 35 = 665.
  KastSpectrumKernel K({/*CutWeight=*/8});
  EXPECT_DOUBLE_EQ(K.evaluate(A, B), 665.0);
}

TEST_F(WorkedExample, CutAboveAllOccurrencesGivesZero) {
  KastSpectrumKernel K({/*CutWeight=*/40});
  EXPECT_DOUBLE_EQ(K.evaluate(A, B), 0.0);
}

TEST_F(WorkedExample, StringsLighterThanCutIgnored) {
  KastSpectrumKernel K({/*CutWeight=*/60});
  // B weighs 52 < 60: the pair is ignored outright.
  EXPECT_DOUBLE_EQ(K.evaluate(A, B), 0.0);
  // And even B against itself.
  EXPECT_DOUBLE_EQ(K.evaluate(B, B), 0.0);
  // A (weight 64) is still comparable to itself.
  EXPECT_DOUBLE_EQ(K.evaluate(A, A), 4096.0);
}

TEST_F(WorkedExample, ReferenceMatcherAgrees) {
  KastKernelOptions Fast{/*CutWeight=*/4};
  KastKernelOptions Slow{/*CutWeight=*/4};
  Slow.UseReferenceMatcher = true;
  EXPECT_DOUBLE_EQ(KastSpectrumKernel(Fast).evaluate(A, B),
                   KastSpectrumKernel(Slow).evaluate(A, B));
}

TEST_F(WorkedExample, SymmetricKernel) {
  KastSpectrumKernel K({/*CutWeight=*/4});
  EXPECT_DOUBLE_EQ(K.evaluate(A, B), K.evaluate(B, A));
}

TEST_F(WorkedExample, PerFeatureTotalPolicy) {
  // Under the feature-total policy every occurrence counts and the cut
  // applies to the summed weights, which all exceed 4 here — same
  // value as the default policy for this example.
  KastKernelOptions Options{/*CutWeight=*/4};
  Options.Policy = CutPolicy::PerFeatureTotal;
  EXPECT_DOUBLE_EQ(KastSpectrumKernel(Options).evaluate(A, B), 1018.0);
  // But at cut 12, per-feature keeps S2 (13 vs 11 >= 12? no — 11 < 12
  // drops it) while keeping S3 (15, 14): value = 19*35 + 15*14.
  KastKernelOptions Cut12{/*CutWeight=*/12};
  Cut12.Policy = CutPolicy::PerFeatureTotal;
  EXPECT_DOUBLE_EQ(KastSpectrumKernel(Cut12).evaluate(A, B),
                   19.0 * 35 + 15.0 * 14);
}

//===----------------------------------------------------------------------===//
// Generic behavior beyond the worked example
//===----------------------------------------------------------------------===//

namespace {

WeightedString fromText(const std::shared_ptr<TokenTable> &Table,
                        const std::string &Text) {
  return parseWeightedString(Text, Table).take();
}

} // namespace

TEST(KastKernelTest, EmptyStringsGiveZero) {
  auto Table = TokenTable::create();
  WeightedString Empty(Table), S = fromText(Table, "a:5");
  KastSpectrumKernel K({/*CutWeight=*/1});
  EXPECT_DOUBLE_EQ(K.evaluate(Empty, S), 0.0);
  EXPECT_DOUBLE_EQ(K.evaluate(Empty, Empty), 0.0);
  EXPECT_DOUBLE_EQ(K.evaluateNormalized(Empty, S), 0.0);
}

TEST(KastKernelTest, IdenticalStringsNormalizeToOne) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:3 b:4 c:5");
  WeightedString T = fromText(Table, "a:3 b:4 c:5");
  KastSpectrumKernel K({/*CutWeight=*/2});
  EXPECT_NEAR(K.evaluateNormalized(S, T), 1.0, 1e-12);
}

TEST(KastKernelTest, DisjointAlphabetsGiveZero) {
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:3 b:4");
  WeightedString T = fromText(Table, "x:3 y:4");
  KastSpectrumKernel K({/*CutWeight=*/1});
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 0.0);
}

TEST(KastKernelTest, WeightsDifferPerOccurrence) {
  // The same literal sequence with different weights on each side
  // still matches; feature values use each side's own weights.
  auto Table = TokenTable::create();
  WeightedString S = fromText(Table, "a:10 b:10");
  WeightedString T = fromText(Table, "a:1 b:2");
  KastSpectrumKernel K({/*CutWeight=*/1});
  // Single shared feature "a b": 20 * 3.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 60.0);
}

TEST(KastKernelTest, RepeatedSubstringAccumulates) {
  auto Table = TokenTable::create();
  // "a b" twice in S (weights 3 and 7), once in T (weight 5), with
  // per-side fillers blocking extension.
  WeightedString S = fromText(Table, "a:1 b:2 x:9 a:3 b:4");
  WeightedString T = fromText(Table, "y:9 a:2 b:3 z:9");
  KastSpectrumKernel K({/*CutWeight=*/2});
  // Features: "a b" -> S: 3 + 7, T: 5  => 50.
  EXPECT_DOUBLE_EQ(K.evaluate(S, T), 50.0);
}

TEST(KastKernelTest, NameMentionsCut) {
  KastSpectrumKernel K({/*CutWeight=*/16});
  EXPECT_NE(K.name().find("16"), std::string::npos);
}

// Property sweep: on random weighted strings the kernel must be
// symmetric, agree between the SAM and DP matchers, and normalize
// self-similarity to 1.
class KastKernelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KastKernelSweep, SymmetryAndMatcherEquivalence) {
  auto [Length, Alphabet, Cut] = GetParam();
  Rng R(Length * 7919 + Alphabet * 31 + Cut);
  auto Table = TokenTable::create();
  for (int Round = 0; Round < 10; ++Round) {
    WeightedString S(Table), T(Table);
    for (int I = 0; I < Length; ++I)
      S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
               R.uniformInt(1, 9));
    for (int I = 0; I < Length; ++I)
      T.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
               R.uniformInt(1, 9));

    KastKernelOptions Fast{static_cast<uint64_t>(Cut)};
    KastKernelOptions Slow{static_cast<uint64_t>(Cut)};
    Slow.UseReferenceMatcher = true;
    KastSpectrumKernel KFast(Fast), KSlow(Slow);

    double Kst = KFast.evaluate(S, T);
    EXPECT_DOUBLE_EQ(Kst, KFast.evaluate(T, S));
    EXPECT_DOUBLE_EQ(Kst, KSlow.evaluate(S, T));
    if (S.totalWeight() >= static_cast<uint64_t>(Cut)) {
      EXPECT_NEAR(KFast.evaluateNormalized(S, S), 1.0, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KastKernelSweep,
    ::testing::Combine(::testing::Values(3, 10, 40),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 8)));
