//===- tests/PipelineSmokeTest.cpp - build-seam smoke test -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// End-to-end smoke test for the seam the build bootstrap wires together:
// the Pipeline.h doc snippet (Pipeline::convert feeding
// KastSpectrumKernel::evaluateNormalized) must compose exactly as
// documented, across the trace -> tree -> compressed tree -> weighted
// string -> kernel stack (§3.1 + §3.2).
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/Pipeline.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

Trace makeSequentialReader(const std::string &Name, int Blocks) {
  Trace T(Name);
  T.append(OpKind::Open, 3);
  for (int I = 0; I < Blocks; ++I)
    T.append(OpKind::Read, 3, 4096);
  T.append(OpKind::Close, 3);
  return T;
}

Trace makeStridedWriter(const std::string &Name, int Blocks) {
  Trace T(Name);
  T.append(OpKind::Open, 4);
  for (int I = 0; I < Blocks; ++I) {
    T.append(OpKind::Lseek, 4, 0);
    T.append(OpKind::Write, 4, 512);
  }
  T.append(OpKind::Fsync, 4);
  T.append(OpKind::Close, 4);
  return T;
}

} // namespace

// The doc snippet from Pipeline.h, verbatim semantics: convert two traces
// through one shared-table pipeline and compare with the KAST kernel.
TEST(PipelineSmokeTest, DocSnippetComposes) {
  Pipeline P; // byte-aware, 2 passes
  WeightedString S = P.convert(makeSequentialReader("reader-a", 8));
  WeightedString T = P.convert(makeSequentialReader("reader-b", 8));

  KastSpectrumKernel K({.CutWeight = 2});
  double Sim = K.evaluateNormalized(S, T);

  // Identical traces through the same pipeline are maximally similar
  // under Eq. (12) normalization.
  EXPECT_NEAR(Sim, 1.0, 1e-9);
}

TEST(PipelineSmokeTest, SharedTableMakesStringsComparable) {
  Pipeline P;
  WeightedString A = P.convert(makeSequentialReader("reader", 8));
  WeightedString B = P.convert(makeStridedWriter("writer", 8));

  // One pipeline, one TokenTable: both strings must share it.
  ASSERT_EQ(A.table().get(), B.table().get());
  ASSERT_EQ(A.table().get(), P.table().get());
  EXPECT_FALSE(A.empty());
  EXPECT_FALSE(B.empty());

  KastSpectrumKernel K({.CutWeight = 2});
  double Self = K.evaluateNormalized(A, A);
  double Cross = K.evaluateNormalized(A, B);

  EXPECT_NEAR(Self, 1.0, 1e-9);
  // Distinct access patterns are strictly less similar than identity,
  // and normalization keeps the value in [0, 1].
  EXPECT_GE(Cross, 0.0);
  EXPECT_LT(Cross, 1.0);
  // Symmetry of the kernel.
  EXPECT_DOUBLE_EQ(Cross, K.evaluateNormalized(B, A));
}

TEST(PipelineSmokeTest, WithAndWithoutBytesVariantsConvert) {
  // The paper's two representations (§3.1) both flow through convert().
  Trace T = makeStridedWriter("writer", 4);

  Pipeline Bytes = Pipeline::withBytes();
  Pipeline NoBytes = Pipeline::withoutBytes();

  WeightedString WithB = Bytes.convert(T);
  WeightedString WithoutB = NoBytes.convert(T);
  EXPECT_FALSE(WithB.empty());
  EXPECT_FALSE(WithoutB.empty());

  // Both variants keep the full result inspectable.
  PipelineResult R = Bytes.convertDetailed(T);
  EXPECT_EQ(R.String.totalWeight(), WithB.totalWeight());
}
