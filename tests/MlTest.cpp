//===- tests/MlTest.cpp - Kernel PCA, clustering, metrics ------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ClusterMetrics.h"
#include "ml/HierarchicalClustering.h"
#include "ml/KernelPca.h"
#include "ml/NearestNeighbor.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kast;

namespace {

/// Gram matrix of explicit 2-D points (linear kernel), so Kernel PCA
/// must recover plain PCA of those points.
Matrix gramOfPoints(const std::vector<std::pair<double, double>> &Points) {
  Matrix K(Points.size(), Points.size());
  for (size_t I = 0; I < Points.size(); ++I)
    for (size_t J = 0; J < Points.size(); ++J)
      K.at(I, J) = Points[I].first * Points[J].first +
                   Points[I].second * Points[J].second;
  return K;
}

/// Euclidean distances of explicit points.
Matrix distOfPoints(const std::vector<std::pair<double, double>> &Points) {
  Matrix D(Points.size(), Points.size());
  for (size_t I = 0; I < Points.size(); ++I)
    for (size_t J = 0; J < Points.size(); ++J) {
      double Dx = Points[I].first - Points[J].first;
      double Dy = Points[I].second - Points[J].second;
      D.at(I, J) = std::sqrt(Dx * Dx + Dy * Dy);
    }
  return D;
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel PCA
//===----------------------------------------------------------------------===//

TEST(KernelPcaTest, RecoversDominantAxis) {
  // Points spread along x with tiny y jitter: component 1 must align
  // with x (up to sign).
  std::vector<std::pair<double, double>> Points = {
      {-4, 0.1}, {-2, -0.1}, {0, 0.05}, {2, -0.05}, {4, 0.0}};
  KernelPcaResult R = kernelPca(gramOfPoints(Points), 2);
  ASSERT_GE(R.Projections.cols(), 1u);
  // Projections on component 1 are ordered like x (or exactly
  // reversed).
  bool Increasing = R.Projections.at(0, 0) < R.Projections.at(4, 0);
  for (size_t I = 1; I < 5; ++I) {
    if (Increasing)
      EXPECT_LT(R.Projections.at(I - 1, 0), R.Projections.at(I, 0));
    else
      EXPECT_GT(R.Projections.at(I - 1, 0), R.Projections.at(I, 0));
  }
}

TEST(KernelPcaTest, PairwiseDistancesPreservedByFullProjection) {
  // With all components kept, projected distances equal feature-space
  // distances derived from the centered kernel.
  std::vector<std::pair<double, double>> Points = {
      {0, 0}, {1, 0}, {0, 2}, {3, 1}};
  Matrix K = gramOfPoints(Points);
  KernelPcaResult R = kernelPca(K, 4);
  Matrix D = distOfPoints(Points);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J) {
      double Sum = 0.0;
      for (size_t C = 0; C < R.Projections.cols(); ++C) {
        double Diff = R.Projections.at(I, C) - R.Projections.at(J, C);
        Sum += Diff * Diff;
      }
      EXPECT_NEAR(std::sqrt(Sum), D.at(I, J), 1e-8);
    }
}

TEST(KernelPcaTest, ExplainedVarianceSumsToOneWhenAllKept) {
  std::vector<std::pair<double, double>> Points = {
      {1, 2}, {3, -1}, {-2, 0}, {0, 4}, {2, 2}};
  KernelPcaResult R = kernelPca(gramOfPoints(Points), 5);
  double Sum = 0.0;
  for (double V : R.ExplainedVariance)
    Sum += V;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
  for (size_t I = 1; I < R.Eigenvalues.size(); ++I)
    EXPECT_GE(R.Eigenvalues[I - 1], R.Eigenvalues[I]);
}

TEST(KernelPcaTest, EmptyInput) {
  KernelPcaResult R = kernelPca(Matrix(), 2);
  EXPECT_EQ(R.Projections.rows(), 0u);
  EXPECT_TRUE(R.Eigenvalues.empty());
}

TEST(KernelPcaTest, MaxComponentsRespected) {
  std::vector<std::pair<double, double>> Points = {
      {1, 2}, {3, -1}, {-2, 0}, {0, 4}};
  KernelPcaResult R = kernelPca(gramOfPoints(Points), 1);
  EXPECT_EQ(R.Projections.cols(), 1u);
}

//===----------------------------------------------------------------------===//
// Hierarchical clustering
//===----------------------------------------------------------------------===//

TEST(ClusteringTest, TwoObviousClusters) {
  std::vector<std::pair<double, double>> Points = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}};
  Dendrogram D = clusterHierarchical(distOfPoints(Points));
  std::vector<size_t> Flat = D.cutToClusters(2);
  EXPECT_EQ(Flat[0], Flat[1]);
  EXPECT_EQ(Flat[1], Flat[2]);
  EXPECT_EQ(Flat[3], Flat[4]);
  EXPECT_EQ(Flat[4], Flat[5]);
  EXPECT_NE(Flat[0], Flat[3]);
}

TEST(ClusteringTest, MergeCountAndSizes) {
  std::vector<std::pair<double, double>> Points = {{0, 0}, {1, 0}, {5, 0}};
  Dendrogram D = clusterHierarchical(distOfPoints(Points));
  ASSERT_EQ(D.merges().size(), 2u);
  EXPECT_EQ(D.merges()[0].Size, 2u);
  EXPECT_EQ(D.merges()[1].Size, 3u);
  // The first merge is the closest pair (0, 1) at distance 1.
  EXPECT_DOUBLE_EQ(D.merges()[0].Distance, 1.0);
}

TEST(ClusteringTest, SingleLinkageChains) {
  // A chain 0-1-2-3 with unit gaps and one big gap to 4: single
  // linkage groups the chain despite its diameter.
  Matrix Dist(5, 5, 0.0);
  auto Set = [&Dist](size_t I, size_t J, double V) {
    Dist.at(I, J) = V;
    Dist.at(J, I) = V;
  };
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = I + 1; J < 5; ++J)
      Set(I, J, 100.0);
  Set(0, 1, 1.0);
  Set(1, 2, 1.0);
  Set(2, 3, 1.0);
  // Leaf 4 stays far away from everything.
  Dendrogram D = clusterHierarchical(Dist, Linkage::Single);
  std::vector<size_t> Flat = D.cutToClusters(2);
  EXPECT_EQ(Flat[0], Flat[3]); // Chain in one cluster.
  EXPECT_NE(Flat[0], Flat[4]);
}

TEST(ClusteringTest, CompleteLinkageResistsChaining) {
  // Same chain: complete linkage merges 0-1 and 2-3 first, and joining
  // the pairs costs the diameter (100), same as joining leaf 4 — but
  // cutting to 3 clusters must give {0,1}, {2,3}, {4}.
  Matrix Dist(5, 5, 0.0);
  auto Set = [&Dist](size_t I, size_t J, double V) {
    Dist.at(I, J) = V;
    Dist.at(J, I) = V;
  };
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = I + 1; J < 5; ++J)
      Set(I, J, 100.0);
  Set(0, 1, 1.0);
  Set(1, 2, 2.0);
  Set(2, 3, 1.0);
  Dendrogram D = clusterHierarchical(Dist, Linkage::Complete);
  std::vector<size_t> Flat = D.cutToClusters(3);
  EXPECT_EQ(Flat[0], Flat[1]);
  EXPECT_EQ(Flat[2], Flat[3]);
  EXPECT_NE(Flat[0], Flat[2]);
  EXPECT_NE(Flat[0], Flat[4]);
  EXPECT_NE(Flat[2], Flat[4]);
}

TEST(ClusteringTest, AverageLinkageKnownMergeHeight) {
  // Three leaves: 0-1 at 2; both far from 2 (4 and 6). After merging
  // {0,1}, average distance to 2 is (4+6)/2 = 5.
  Matrix Dist = Matrix::fromRows({{0, 2, 4}, {2, 0, 6}, {4, 6, 0}});
  Dendrogram D = clusterHierarchical(Dist, Linkage::Average);
  ASSERT_EQ(D.merges().size(), 2u);
  EXPECT_DOUBLE_EQ(D.merges()[1].Distance, 5.0);
}

TEST(ClusteringTest, CutToOneClusterGroupsAll) {
  Matrix Dist = Matrix::fromRows({{0, 1, 9}, {1, 0, 9}, {9, 9, 0}});
  Dendrogram D = clusterHierarchical(Dist);
  std::vector<size_t> Flat = D.cutToClusters(1);
  EXPECT_EQ(Flat, (std::vector<size_t>{0, 0, 0}));
}

TEST(ClusteringTest, CutToLeavesIsDiscrete) {
  Matrix Dist = Matrix::fromRows({{0, 1, 9}, {1, 0, 9}, {9, 9, 0}});
  Dendrogram D = clusterHierarchical(Dist);
  std::vector<size_t> Flat = D.cutToClusters(3);
  EXPECT_EQ(numClusters(Flat), 3u);
}

TEST(ClusteringTest, CutAtHeight) {
  Matrix Dist = Matrix::fromRows({{0, 1, 9}, {1, 0, 9}, {9, 9, 0}});
  Dendrogram D = clusterHierarchical(Dist);
  EXPECT_EQ(D.numClustersAtHeight(0.5), 3u);
  EXPECT_EQ(D.numClustersAtHeight(2.0), 2u);
  EXPECT_EQ(D.numClustersAtHeight(10.0), 1u);
}

TEST(ClusteringTest, SingleLinkageHeightsAreMonotone) {
  Rng R(5150);
  Matrix Dist(12, 12, 0.0);
  for (size_t I = 0; I < 12; ++I)
    for (size_t J = I + 1; J < 12; ++J) {
      double V = R.uniformReal() * 10;
      Dist.at(I, J) = V;
      Dist.at(J, I) = V;
    }
  Dendrogram D = clusterHierarchical(Dist, Linkage::Single);
  for (size_t M = 1; M < D.merges().size(); ++M)
    EXPECT_GE(D.merges()[M].Distance, D.merges()[M - 1].Distance);
}

TEST(ClusteringTest, DendrogramRendering) {
  Matrix Dist = Matrix::fromRows({{0, 1, 9}, {1, 0, 9}, {9, 9, 0}});
  Dendrogram D = clusterHierarchical(Dist);
  std::string Out = renderDendrogramAscii(D, {"x", "y", "z"});
  EXPECT_NE(Out.find("x"), std::string::npos);
  EXPECT_NE(Out.find("y"), std::string::npos);
  EXPECT_NE(Out.find("z"), std::string::npos);
  EXPECT_NE(Out.find("d="), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Kernel-to-distance conversions
//===----------------------------------------------------------------------===//

TEST(DistanceTest, KernelToDistanceIsEuclidean) {
  std::vector<std::pair<double, double>> Points = {{0, 0}, {3, 4}, {1, 1}};
  Matrix K = gramOfPoints(Points);
  Matrix D = kernelToDistance(K);
  Matrix Expected = distOfPoints(Points);
  EXPECT_LT(D.maxAbsDiff(Expected), 1e-9);
}

TEST(DistanceTest, SimilarityToDistanceBasics) {
  Matrix K = Matrix::fromRows({{1.0, 0.25}, {0.25, 1.0}});
  Matrix D = similarityToDistance(K);
  EXPECT_DOUBLE_EQ(D.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(D.at(0, 1), 0.75);
}

TEST(DistanceTest, SimilarityAboveOneClampsToZero) {
  // The Kast kernel can exceed 1 after normalization; distance floors
  // at zero.
  Matrix K = Matrix::fromRows({{1.0, 1.2}, {1.2, 1.0}});
  Matrix D = similarityToDistance(K);
  EXPECT_DOUBLE_EQ(D.at(0, 1), 0.0);
}

//===----------------------------------------------------------------------===//
// Cluster metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, PurityPerfectAndMixed) {
  std::vector<std::string> Labels = {"A", "A", "B", "B"};
  EXPECT_DOUBLE_EQ(purity({0, 0, 1, 1}, Labels), 1.0);
  EXPECT_DOUBLE_EQ(purity({0, 1, 0, 1}, Labels), 0.5);
  EXPECT_DOUBLE_EQ(purity({0, 0, 0, 0}, Labels), 0.5);
}

TEST(MetricsTest, AriPerfectIsOne) {
  std::vector<std::string> Labels = {"A", "A", "B", "B", "C"};
  EXPECT_NEAR(adjustedRandIndex({0, 0, 1, 1, 2}, Labels), 1.0, 1e-12);
}

TEST(MetricsTest, AriLabelPermutationInvariant) {
  std::vector<std::string> Labels = {"A", "A", "B", "B"};
  EXPECT_NEAR(adjustedRandIndex({1, 1, 0, 0}, Labels), 1.0, 1e-12);
}

TEST(MetricsTest, AriRandomIsLow) {
  // A clustering that splits each label evenly carries no information.
  std::vector<std::string> Labels = {"A", "A", "B", "B"};
  double Ari = adjustedRandIndex({0, 1, 0, 1}, Labels);
  EXPECT_LT(Ari, 0.2);
}

TEST(MetricsTest, MisplacedCountZeroWhenGroupsMatch) {
  std::vector<std::string> Labels = {"A", "A", "B", "C", "C", "D"};
  // Expected grouping: {A}, {B}, {C, D} — the paper's outcome.
  LabelGrouping Groups = {{"A"}, {"B"}, {"C", "D"}};
  EXPECT_EQ(misplacedCount({0, 0, 1, 2, 2, 2}, Labels, Groups), 0u);
}

TEST(MetricsTest, MisplacedCountDetectsStrays) {
  std::vector<std::string> Labels = {"A", "A", "A", "B", "B", "B"};
  LabelGrouping Groups = {{"A"}, {"B"}};
  // One B sits in the A cluster.
  EXPECT_EQ(misplacedCount({0, 0, 0, 0, 1, 1}, Labels, Groups), 1u);
}

TEST(MetricsTest, MatchesGroupingExact) {
  std::vector<std::string> Labels = {"A", "A", "B", "C", "D"};
  LabelGrouping Expected = {{"A"}, {"B"}, {"C", "D"}};
  EXPECT_TRUE(matchesGrouping({0, 0, 1, 2, 2}, Labels, Expected));
  // C and D split: no match.
  EXPECT_FALSE(matchesGrouping({0, 0, 1, 2, 3}, Labels, Expected));
  // B absorbed into A: no match.
  EXPECT_FALSE(matchesGrouping({0, 0, 0, 1, 1}, Labels, Expected));
}

TEST(MetricsTest, MatchesGroupingRejectsForeignLabels) {
  std::vector<std::string> Labels = {"A", "Z"};
  LabelGrouping Expected = {{"A"}, {"B"}};
  EXPECT_FALSE(matchesGrouping({0, 1}, Labels, Expected));
}

TEST(MetricsTest, NumClusters) {
  EXPECT_EQ(numClusters({0, 1, 2, 1}), 3u);
  EXPECT_EQ(numClusters({}), 0u);
}

TEST(MetricsTest, SilhouetteWellSeparatedIsHigh) {
  std::vector<std::pair<double, double>> Points = {
      {0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}};
  Matrix D = distOfPoints(Points);
  double S = silhouetteScore(D.data(), 4, {0, 0, 1, 1});
  EXPECT_GT(S, 0.95);
}

TEST(MetricsTest, SilhouetteBadSplitIsLow) {
  std::vector<std::pair<double, double>> Points = {
      {0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}};
  Matrix D = distOfPoints(Points);
  // Clusters cut across the natural groups.
  double S = silhouetteScore(D.data(), 4, {0, 1, 0, 1});
  EXPECT_LT(S, 0.0);
}

TEST(MetricsTest, SilhouetteSingletonsContributeZero) {
  std::vector<std::pair<double, double>> Points = {
      {0, 0}, {0.1, 0}, {10, 10}};
  Matrix D = distOfPoints(Points);
  double S = silhouetteScore(D.data(), 3, {0, 0, 1});
  // The singleton contributes 0; the pair contributes ~1 each.
  EXPECT_GT(S, 0.6);
  EXPECT_LT(S, 0.7);
}

TEST(NearestNeighborTest, PerfectBlockMatrix) {
  // Similarity 0.9 within labels, 0.1 across.
  std::vector<std::string> Labels = {"A", "A", "B", "B"};
  Matrix K(4, 4, 0.1);
  for (size_t I = 0; I < 4; ++I)
    K.at(I, I) = 1.0;
  K.at(0, 1) = K.at(1, 0) = 0.9;
  K.at(2, 3) = K.at(3, 2) = 0.9;
  LooResult R = leaveOneOutNearestNeighbor(K, Labels);
  EXPECT_DOUBLE_EQ(R.Accuracy, 1.0);
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_EQ(R.Predictions[0], "A");
  EXPECT_EQ(R.Predictions[3], "B");
}

TEST(NearestNeighborTest, ReportsErrors) {
  std::vector<std::string> Labels = {"A", "A", "B"};
  Matrix K(3, 3, 0.0);
  for (size_t I = 0; I < 3; ++I)
    K.at(I, I) = 1.0;
  // B's nearest is an A.
  K.at(2, 0) = K.at(0, 2) = 0.8;
  K.at(0, 1) = K.at(1, 0) = 0.9;
  LooResult R = leaveOneOutNearestNeighbor(K, Labels);
  EXPECT_NEAR(R.Accuracy, 2.0 / 3.0, 1e-12);
  ASSERT_EQ(R.Errors.size(), 1u);
  EXPECT_EQ(R.Errors[0], 2u);
}

TEST(NearestNeighborTest, TieBreaksTowardSmallerIndex) {
  std::vector<std::string> Labels = {"A", "B", "C"};
  Matrix K(3, 3, 0.5); // All equal.
  for (size_t I = 0; I < 3; ++I)
    K.at(I, I) = 1.0;
  LooResult R = leaveOneOutNearestNeighbor(K, Labels);
  EXPECT_EQ(R.Predictions[2], "A"); // Index 0 wins the tie.
}

TEST(NearestNeighborTest, SelectsNeighborWhenAllSimilaritiesBelowMinusOne) {
  // Regression: BestSim used to start at the sentinel -1.0, so with an
  // unnormalized kernel whose similarities all sit at or below -1 no
  // neighbor was ever selected and the self-index leaked through as
  // prediction "".
  std::vector<std::string> Labels = {"A", "B", "A"};
  Matrix K(3, 3, 0.0);
  K.at(0, 1) = K.at(1, 0) = -2.0;
  K.at(0, 2) = K.at(2, 0) = -1.5;
  K.at(1, 2) = K.at(2, 1) = -3.0;
  LooResult R = leaveOneOutNearestNeighbor(K, Labels);
  EXPECT_EQ(R.Predictions[0], "A"); // Argmax of {-2, -1.5} is index 2.
  EXPECT_EQ(R.Predictions[1], "A"); // Argmax of {-2, -3} is index 0.
  EXPECT_EQ(R.Predictions[2], "A"); // Argmax of {-1.5, -3} is index 0.
  EXPECT_NEAR(R.Accuracy, 2.0 / 3.0, 1e-12);
  ASSERT_EQ(R.Errors.size(), 1u);
  EXPECT_EQ(R.Errors[0], 1u);
}

TEST(NearestNeighborTest, SingletonCorpusHasNoNeighbor) {
  // With N == 1 there is no J != I at all; the prediction stays empty
  // and counts as an error.
  Matrix K(1, 1, 1.0);
  LooResult R = leaveOneOutNearestNeighbor(K, {"A"});
  EXPECT_EQ(R.Predictions[0], "");
  EXPECT_DOUBLE_EQ(R.Accuracy, 0.0);
}

TEST(MetricsTest, SilhouetteSingleClusterIsZero) {
  std::vector<std::pair<double, double>> Points = {{0, 0}, {1, 1}};
  Matrix D = distOfPoints(Points);
  EXPECT_DOUBLE_EQ(silhouetteScore(D.data(), 2, {0, 0}), 0.0);
}
