//===- tests/AstTest.cpp - Mini lexer/parser/encoder unit tests ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/AstEncoder.h"
#include "ast/Lexer.h"
#include "ast/Parser.h"
#include "core/StringSerializer.h"

#include <gtest/gtest.h>

using namespace kast;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lexProgram("fn foo let iffy if");
  ASSERT_TRUE(Tokens.hasValue());
  ASSERT_EQ(Tokens->size(), 6u); // 5 tokens + EOF.
  EXPECT_EQ((*Tokens)[0].Kind, TokKind::KwFn);
  EXPECT_EQ((*Tokens)[1].Kind, TokKind::Identifier);
  EXPECT_EQ((*Tokens)[2].Kind, TokKind::KwLet);
  EXPECT_EQ((*Tokens)[3].Kind, TokKind::Identifier); // Not 'if'!
  EXPECT_EQ((*Tokens)[4].Kind, TokKind::KwIf);
  EXPECT_EQ((*Tokens)[5].Kind, TokKind::EndOfFile);
}

TEST(LexerTest, TwoCharOperators) {
  auto Tokens = lexProgram("<= >= == != && || < > = !");
  ASSERT_TRUE(Tokens.hasValue());
  std::vector<std::string> Spellings;
  for (const LexToken &T : *Tokens)
    if (T.Kind == TokKind::Operator)
      Spellings.push_back(T.Text);
  EXPECT_EQ(Spellings,
            (std::vector<std::string>{"<=", ">=", "==", "!=", "&&", "||",
                                      "<", ">", "=", "!"}));
}

TEST(LexerTest, NumbersAndPunctuation) {
  auto Tokens = lexProgram("f(1, 23);");
  ASSERT_TRUE(Tokens.hasValue());
  ASSERT_EQ(Tokens->size(), 8u);
  EXPECT_EQ((*Tokens)[2].Text, "1");
  EXPECT_EQ((*Tokens)[3].Kind, TokKind::Comma);
  EXPECT_EQ((*Tokens)[4].Text, "23");
  EXPECT_EQ((*Tokens)[6].Kind, TokKind::Semicolon);
}

TEST(LexerTest, CommentsSkipped) {
  auto Tokens = lexProgram("a // rest ignored\nb");
  ASSERT_TRUE(Tokens.hasValue());
  ASSERT_EQ(Tokens->size(), 3u);
  EXPECT_EQ((*Tokens)[1].Text, "b");
  EXPECT_EQ((*Tokens)[1].Line, 2u);
}

TEST(LexerTest, PositionsTracked) {
  auto Tokens = lexProgram("ab\n  cd");
  ASSERT_TRUE(Tokens.hasValue());
  EXPECT_EQ((*Tokens)[0].Line, 1u);
  EXPECT_EQ((*Tokens)[0].Column, 1u);
  EXPECT_EQ((*Tokens)[1].Line, 2u);
  EXPECT_EQ((*Tokens)[1].Column, 3u);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(lexProgram("a $ b").hasValue());
  EXPECT_FALSE(lexProgram("a & b").hasValue()); // Lone ampersand.
  Expected<std::vector<LexToken>> E = lexProgram("x\n  @");
  ASSERT_FALSE(E.hasValue());
  EXPECT_NE(E.message().find("2:3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, MinimalFunction) {
  Expected<Ast> Tree = parseProgram("fn main() { }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  EXPECT_EQ(Tree->dump(), "module\n"
                          "  function main\n"
                          "    block\n");
}

TEST(ParserTest, ParamsAndStatements) {
  Expected<Ast> Tree = parseProgram("fn f(a, b) { let c = a + b; return c; }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  EXPECT_EQ(Tree->dump(), "module\n"
                          "  function f\n"
                          "    param a\n"
                          "    param b\n"
                          "    block\n"
                          "      let c\n"
                          "        binary +\n"
                          "          var a\n"
                          "          var b\n"
                          "      return\n"
                          "        var c\n");
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  Expected<Ast> Tree = parseProgram("fn f() { return 1 + 2 * 3 - 4; }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  // (1 + (2*3)) - 4: '-' at top (left associative), '*' below '+'.
  EXPECT_EQ(Tree->dump(), "module\n"
                          "  function f\n"
                          "    block\n"
                          "      return\n"
                          "        binary -\n"
                          "          binary +\n"
                          "            number 1\n"
                          "            binary *\n"
                          "              number 2\n"
                          "              number 3\n"
                          "          number 4\n");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Expected<Ast> Tree = parseProgram("fn f() { return (1 + 2) * 3; }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  EXPECT_NE(Tree->dump().find("binary *\n"
                              "          binary +\n"),
            std::string::npos);
}

TEST(ParserTest, ComparisonAndLogicalPrecedence) {
  Expected<Ast> Tree =
      parseProgram("fn f(a, b) { return a < 3 && b >= 2 || !a; }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  // || at top, && on its left, unary ! on its right.
  std::string Dump = Tree->dump();
  size_t Or = Dump.find("binary ||");
  size_t And = Dump.find("binary &&");
  size_t Not = Dump.find("unary !");
  EXPECT_NE(Or, std::string::npos);
  EXPECT_NE(And, std::string::npos);
  EXPECT_NE(Not, std::string::npos);
  EXPECT_LT(Or, And);
  EXPECT_LT(And, Not);
}

TEST(ParserTest, IfElseChains) {
  Expected<Ast> Tree = parseProgram(
      "fn f(x) { if (x < 0) { return 0; } else if (x == 0) { return 1; } "
      "else { return 2; } }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  // Outer if has 3 children: cond, then-block, nested if; nested if
  // has cond, then-block, else-block.
  const AstNode &Module = Tree->node(Tree->root());
  const AstNode &Fn = Tree->node(Module.Children[0]);
  const AstNode &Block = Tree->node(Fn.Children.back());
  const AstNode &OuterIf = Tree->node(Block.Children[0]);
  ASSERT_EQ(OuterIf.Kind, AstKind::If);
  ASSERT_EQ(OuterIf.Children.size(), 3u);
  const AstNode &InnerIf = Tree->node(OuterIf.Children[2]);
  EXPECT_EQ(InnerIf.Kind, AstKind::If);
  EXPECT_EQ(InnerIf.Children.size(), 3u);
}

TEST(ParserTest, WhileAndAssignment) {
  Expected<Ast> Tree =
      parseProgram("fn f(n) { let i = 0; while (i < n) { i = i + 1; } }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  std::string Dump = Tree->dump();
  EXPECT_NE(Dump.find("while\n"), std::string::npos);
  EXPECT_NE(Dump.find("assign i\n"), std::string::npos);
}

TEST(ParserTest, CallsWithArguments) {
  Expected<Ast> Tree = parseProgram("fn f() { g(1, h(2), 3); }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  EXPECT_EQ(Tree->dump(), "module\n"
                          "  function f\n"
                          "    block\n"
                          "      exprstmt\n"
                          "        call g\n"
                          "          number 1\n"
                          "          call h\n"
                          "            number 2\n"
                          "          number 3\n");
}

TEST(ParserTest, MultipleFunctions) {
  Expected<Ast> Tree = parseProgram("fn a() { } fn b() { }");
  ASSERT_TRUE(Tree.hasValue()) << Tree.message();
  EXPECT_EQ(Tree->node(Tree->root()).Children.size(), 2u);
}

TEST(ParserTest, ErrorsCarryPositions) {
  Expected<Ast> Tree = parseProgram("fn f() { let = 3; }");
  ASSERT_FALSE(Tree.hasValue());
  EXPECT_NE(Tree.message().find("variable name"), std::string::npos);
  EXPECT_NE(Tree.message().find("1:"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedPrograms) {
  EXPECT_FALSE(parseProgram("fn f( { }").hasValue());
  EXPECT_FALSE(parseProgram("fn f() { return 1 + ; }").hasValue());
  EXPECT_FALSE(parseProgram("fn f() { while i < 3 { } }").hasValue());
  EXPECT_FALSE(parseProgram("f() { }").hasValue());
  EXPECT_FALSE(parseProgram("fn f() {").hasValue());
}

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

TEST(AstEncoderTest, LiteralsWithAndWithoutAbstraction) {
  Expected<Ast> Tree = parseProgram("fn f(x) { return x + 1; }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();

  AstEncodeOptions Concrete;
  Concrete.AbstractIdentifiers = false;
  Concrete.AbstractLiterals = false;
  WeightedString C = encodeAst(*Tree, Table, Concrete);
  EXPECT_EQ(formatWeightedString(C),
            "module:1 function[f]:1 param[x]:1 [LEVEL_UP]:1 block:1 "
            "return:1 binary[+]:1 var[x]:1 [LEVEL_UP]:1 number[1]:1");

  WeightedString A = encodeAst(*Tree, Table); // Abstracted (default).
  EXPECT_EQ(formatWeightedString(A),
            "module:1 function[]:1 param[]:1 [LEVEL_UP]:1 block:1 "
            "return:1 binary[+]:1 var[]:1 [LEVEL_UP]:1 number[]:1");
}

TEST(AstEncoderTest, SiblingRunsCollapse) {
  // Three copies of the same statement collapse to weight 3.
  Expected<Ast> Tree =
      parseProgram("fn f(a) { a = a + 1; a = a + 1; a = a + 1; }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();
  WeightedString S = encodeAst(*Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "module:1 function[]:1 param[]:1 [LEVEL_UP]:1 block:1 "
            "assign[]:3 binary[+]:1 var[]:1 [LEVEL_UP]:1 number[]:1");
}

TEST(AstEncoderTest, AbstractionEnablesCollapse) {
  // Different variables, same shape: collapses only when abstracted.
  Expected<Ast> Tree = parseProgram("fn f(a, b) { a = a + 1; b = b + 1; }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();

  WeightedString Abstracted = encodeAst(*Tree, Table);
  AstEncodeOptions Concrete;
  Concrete.AbstractIdentifiers = false;
  WeightedString Kept = encodeAst(*Tree, Table, Concrete);
  EXPECT_LT(Abstracted.size(), Kept.size());
}

TEST(AstEncoderTest, CollapseCanBeDisabled) {
  Expected<Ast> Tree = parseProgram("fn f(a) { a = 1; a = 1; }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();
  AstEncodeOptions NoCollapse;
  NoCollapse.CollapseSiblingRuns = false;
  WeightedString S = encodeAst(*Tree, Table, NoCollapse);
  // Both assignments present individually.
  size_t Assigns = 0;
  for (size_t I = 0; I < S.size(); ++I)
    if (S.literal(I) == "assign[]")
      ++Assigns;
  EXPECT_EQ(Assigns, 2u);
}

TEST(AstEncoderTest, IdenticalFunctionsCollapseUnderAbstraction) {
  // Two empty functions are encoded-identical subtrees: the run
  // collapses into one occurrence of weight 2.
  Expected<Ast> Tree = parseProgram("fn f() { } fn g() { }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();
  WeightedString S = encodeAst(*Tree, Table);
  EXPECT_EQ(formatWeightedString(S), "module:1 function[]:2 block:1");
}

TEST(AstEncoderTest, LevelUpWeightsReflectAscents) {
  // Different bodies do not collapse; ascending from the first
  // function's return value (depth 4) to the next function (depth 1)
  // jumps 4 levels.
  Expected<Ast> Tree =
      parseProgram("fn f() { return 1; } fn g(x) { }");
  ASSERT_TRUE(Tree.hasValue());
  auto Table = TokenTable::create();
  WeightedString S = encodeAst(*Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "module:1 function[]:1 block:1 return:1 number[]:1 "
            "[LEVEL_UP]:4 function[]:1 param[]:1 [LEVEL_UP]:1 block:1");
}
