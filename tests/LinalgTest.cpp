//===- tests/LinalgTest.cpp - linalg library unit tests --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"
#include "linalg/Matrix.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kast;

namespace {

/// Random symmetric matrix with entries in [-1, 1].
Matrix randomSymmetric(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I; J < N; ++J) {
      double V = 2.0 * R.uniformReal() - 1.0;
      A.at(I, J) = V;
      A.at(J, I) = V;
    }
  return A;
}

/// Reconstructs V * diag(Values) * V^T.
Matrix reconstruct(const EigenDecomposition &E) {
  const size_t N = E.Vectors.rows();
  Matrix D(N, N, 0.0);
  for (size_t K = 0; K < N; ++K)
    D.at(K, K) = E.Values[K];
  return E.Vectors.multiply(D).multiply(E.Vectors.transposed());
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, ConstructionAndFill) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  for (size_t I = 0; I < 2; ++I)
    for (size_t J = 0; J < 3; ++J)
      EXPECT_DOUBLE_EQ(M.at(I, J), 1.5);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix I = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(A.multiply(I).maxAbsDiff(A), 0.0);
  EXPECT_DOUBLE_EQ(I.multiply(A).maxAbsDiff(A), 0.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  Matrix A = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(A.transposed().transposed().maxAbsDiff(A), 0.0);
  EXPECT_DOUBLE_EQ(A.transposed().at(2, 1), 6);
}

TEST(MatrixTest, SymmetryCheck) {
  EXPECT_TRUE(Matrix::fromRows({{1, 2}, {2, 1}}).isSymmetric());
  EXPECT_FALSE(Matrix::fromRows({{1, 2}, {3, 1}}).isSymmetric());
  EXPECT_FALSE(Matrix(2, 3).isSymmetric()); // Non-square.
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix A = Matrix::fromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(A.frobeniusNorm(), 5.0);
}

TEST(MatrixTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
}

//===----------------------------------------------------------------------===//
// Jacobi eigendecomposition
//===----------------------------------------------------------------------===//

TEST(EigenTest, DiagonalMatrix) {
  Matrix A = Matrix::fromRows({{3, 0}, {0, 1}});
  EigenDecomposition E = eigenSymmetric(A);
  ASSERT_EQ(E.Values.size(), 2u);
  EXPECT_NEAR(E.Values[0], 3.0, 1e-12);
  EXPECT_NEAR(E.Values[1], 1.0, 1e-12);
  EXPECT_TRUE(E.Converged);
}

TEST(EigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix A = Matrix::fromRows({{2, 1}, {1, 2}});
  EigenDecomposition E = eigenSymmetric(A);
  EXPECT_NEAR(E.Values[0], 3.0, 1e-10);
  EXPECT_NEAR(E.Values[1], 1.0, 1e-10);
}

TEST(EigenTest, ReconstructionMatchesInput) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Matrix A = randomSymmetric(12, Seed);
    EigenDecomposition E = eigenSymmetric(A);
    EXPECT_LT(reconstruct(E).maxAbsDiff(A), 1e-8);
  }
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Matrix A = randomSymmetric(10, 99);
  EigenDecomposition E = eigenSymmetric(A);
  Matrix VtV = E.Vectors.transposed().multiply(E.Vectors);
  EXPECT_LT(VtV.maxAbsDiff(Matrix::identity(10)), 1e-8);
}

TEST(EigenTest, ValuesSortedDescending) {
  Matrix A = randomSymmetric(15, 5);
  EigenDecomposition E = eigenSymmetric(A);
  for (size_t I = 1; I < E.Values.size(); ++I)
    EXPECT_GE(E.Values[I - 1], E.Values[I]);
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Matrix A = randomSymmetric(9, 77);
  EigenDecomposition E = eigenSymmetric(A);
  double Trace = 0.0, Sum = 0.0;
  for (size_t I = 0; I < 9; ++I)
    Trace += A.at(I, I);
  for (double V : E.Values)
    Sum += V;
  EXPECT_NEAR(Trace, Sum, 1e-9);
}

TEST(EigenTest, OneByOne) {
  Matrix A = Matrix::fromRows({{42}});
  EigenDecomposition E = eigenSymmetric(A);
  ASSERT_EQ(E.Values.size(), 1u);
  EXPECT_DOUBLE_EQ(E.Values[0], 42.0);
}

//===----------------------------------------------------------------------===//
// PSD projection (paper §4.1 negative-eigenvalue repair)
//===----------------------------------------------------------------------===//

TEST(PsdTest, AlreadyPsdIsUnchanged) {
  // Gram matrix of two vectors: PSD by construction.
  Matrix K = Matrix::fromRows({{2, 1}, {1, 2}});
  Matrix P = projectToPsd(K);
  EXPECT_LT(P.maxAbsDiff(K), 1e-9);
}

TEST(PsdTest, IndefiniteGetsRepaired) {
  // [[0,1],[1,0]] has eigenvalues +1 and -1.
  Matrix K = Matrix::fromRows({{0, 1}, {1, 0}});
  EXPECT_LT(minEigenvalue(K), -0.9);
  Matrix P = projectToPsd(K);
  EXPECT_GE(minEigenvalue(P), -1e-10);
  // The positive eigenpair is retained: P = 0.5 * [[1,1],[1,1]].
  EXPECT_NEAR(P.at(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(P.at(0, 1), 0.5, 1e-10);
}

TEST(PsdTest, RandomMatricesBecomePsd) {
  for (uint64_t Seed : {10u, 20u, 30u}) {
    Matrix A = randomSymmetric(8, Seed);
    Matrix P = projectToPsd(A);
    EXPECT_TRUE(P.isSymmetric(1e-9));
    EXPECT_GE(minEigenvalue(P), -1e-8);
  }
}

TEST(PsdTest, ProjectionIsIdempotent) {
  Matrix A = randomSymmetric(7, 4);
  Matrix P1 = projectToPsd(A);
  Matrix P2 = projectToPsd(P1);
  EXPECT_LT(P2.maxAbsDiff(P1), 1e-8);
}

//===----------------------------------------------------------------------===//
// Double centering
//===----------------------------------------------------------------------===//

TEST(CenteringTest, RowAndColumnMeansVanish) {
  Matrix K = randomSymmetric(6, 8);
  Matrix C = doubleCenter(K);
  for (size_t I = 0; I < 6; ++I) {
    double RowSum = 0.0;
    for (size_t J = 0; J < 6; ++J)
      RowSum += C.at(I, J);
    EXPECT_NEAR(RowSum, 0.0, 1e-9);
  }
  EXPECT_TRUE(C.isSymmetric(1e-9));
}

TEST(CenteringTest, CenteringIsIdempotent) {
  Matrix K = randomSymmetric(5, 21);
  Matrix C1 = doubleCenter(K);
  Matrix C2 = doubleCenter(C1);
  EXPECT_LT(C2.maxAbsDiff(C1), 1e-10);
}
