//===- tests/UtilTest.cpp - util library unit tests ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/AsciiPlot.h"
#include "util/Csv.h"
#include "util/Error.h"
#include "util/Rng.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

using namespace kast;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.uniformInt(10, 20);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 20u);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng R(7);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.uniformInt(5, 5), 5u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.uniformInt(0, 4));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniformReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, FlipExtremes) {
  Rng R(13);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.flip(0.0));
    EXPECT_TRUE(R.flip(1.0));
  }
}

TEST(RngTest, FlipIsRoughlyFair) {
  Rng R(17);
  int Heads = 0;
  for (int I = 0; I < 10000; ++I)
    Heads += R.flip(0.5);
  EXPECT_NEAR(Heads, 5000, 300);
}

TEST(RngTest, PickWeightedHonorsZeroWeights) {
  Rng R(19);
  std::vector<double> Weights = {0.0, 1.0, 0.0};
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.pickWeighted(Weights), 1u);
}

TEST(RngTest, PickWeightedRoughProportions) {
  Rng R(23);
  std::vector<double> Weights = {1.0, 3.0};
  int CountHeavy = 0;
  for (int I = 0; I < 10000; ++I)
    CountHeavy += R.pickWeighted(Weights) == 1;
  EXPECT_NEAR(CountHeavy, 7500, 400);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(29);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Copy = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Copy);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng A(31);
  Rng Child = A.split();
  // The child must not replay the parent's stream.
  Rng B(31);
  B.split();
  EXPECT_EQ(A.next(), B.next()); // Parents stay in sync.
  bool Different = false;
  Rng C = Rng(31);
  for (int I = 0; I < 8 && !Different; ++I)
    Different = Child.next() != C.next();
  EXPECT_TRUE(Different);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  // Self-consistency: same seed, same stream (guards accidental
  // algorithm changes that would invalidate recorded experiment
  // outputs).
  uint64_t S1 = 123, S2 = 123;
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(splitMix64(S1), splitMix64(S2));
}

//===----------------------------------------------------------------------===//
// StringUtil
//===----------------------------------------------------------------------===//

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string_view> F = split("a,,b", ',');
  ASSERT_EQ(F.size(), 3u);
  EXPECT_EQ(F[0], "a");
  EXPECT_EQ(F[1], "");
  EXPECT_EQ(F[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  std::vector<std::string_view> F = split("abc", ',');
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], "abc");
}

TEST(StringUtilTest, SplitWhitespaceSkipsRuns) {
  std::vector<std::string_view> F = splitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(F.size(), 3u);
  EXPECT_EQ(F[0], "a");
  EXPECT_EQ(F[1], "b");
  EXPECT_EQ(F[2], "c");
}

TEST(StringUtilTest, SplitWhitespaceEmpty) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace("   \t").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(join({}, "+"), "");
  EXPECT_EQ(join({"solo"}, "+"), "solo");
}

TEST(StringUtilTest, ParseUnsignedAcceptsDigitsOnly) {
  EXPECT_EQ(parseUnsigned("0"), 0u);
  EXPECT_EQ(parseUnsigned("1024"), 1024u);
  EXPECT_EQ(parseUnsigned("18446744073709551615"), ~0ULL);
  EXPECT_FALSE(parseUnsigned(""));
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("12x"));
  EXPECT_FALSE(parseUnsigned("18446744073709551616")); // Overflow.
}

TEST(StringUtilTest, ParseHexWithAndWithoutPrefix) {
  EXPECT_EQ(parseHex("0x10"), 16u);
  EXPECT_EQ(parseHex("ff"), 255u);
  EXPECT_EQ(parseHex("0XFF"), 255u);
  EXPECT_FALSE(parseHex(""));
  EXPECT_FALSE(parseHex("0x"));
  EXPECT_FALSE(parseHex("xyz"));
  EXPECT_FALSE(parseHex("0x11223344556677889")); // 17 digits.
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("bytes=12", "bytes="));
  EXPECT_FALSE(startsWith("byte", "bytes="));
  EXPECT_TRUE(endsWith("file.csv", ".csv"));
  EXPECT_FALSE(endsWith("csv", ".csv"));
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(toLower("ReAd"), "read");
  EXPECT_EQ(toLower("123_X"), "123_x");
}

//===----------------------------------------------------------------------===//
// Error types
//===----------------------------------------------------------------------===//

TEST(ErrorTest, StatusDefaultsToOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
}

TEST(ErrorTest, StatusCarriesMessage) {
  Status S = Status::error("boom");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.message(), "boom");
}

TEST(ErrorTest, ExpectedValueAndError) {
  Expected<int> V(7);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 7);
  Expected<int> E = Expected<int>::error("nope");
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.message(), "nope");
}

TEST(ErrorTest, ExpectedTake) {
  Expected<std::string> V(std::string("abc"));
  EXPECT_EQ(V.take(), "abc");
}

//===----------------------------------------------------------------------===//
// TextTable / Csv / AsciiPlot
//===----------------------------------------------------------------------===//

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Each rendered line containing 'value' data aligns: the header line
  // and separator exist.
  EXPECT_NE(Out.find('-'), std::string::npos);
}

TEST(TextTableTest, SeparatorRows) {
  TextTable T;
  T.addRow({"a"});
  T.addSeparator();
  T.addRow({"b"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("a\n"), std::string::npos);
  EXPECT_NE(Out.find("b\n"), std::string::npos);
}

TEST(TextTableTest, FormatDouble) {
  EXPECT_EQ(formatDouble(0.30588, 4), "0.3059");
  EXPECT_EQ(formatDouble(1.0, 2), "1.00");
}

TEST(CsvTest, QuotesSpecialCells) {
  CsvWriter W;
  W.addRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(W.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, MultipleRows) {
  CsvWriter W;
  W.addRow({"a", "b"});
  W.addRow({"1", "2"});
  EXPECT_EQ(W.str(), "a,b\n1,2\n");
}

TEST(AsciiPlotTest, RendersAllGlyphs) {
  AsciiScatter Plot(40, 12);
  Plot.addPoint(0.0, 0.0, 'A');
  Plot.addPoint(1.0, 1.0, 'B');
  std::string Out = Plot.render();
  EXPECT_NE(Out.find('A'), std::string::npos);
  EXPECT_NE(Out.find('B'), std::string::npos);
}

TEST(AsciiPlotTest, CollisionsMarked) {
  AsciiScatter Plot(8, 4);
  Plot.addPoint(0.5, 0.5, 'A');
  Plot.addPoint(0.5, 0.5, 'B'); // Same cell, different glyph.
  Plot.addPoint(0.0, 0.0, 'C');
  Plot.addPoint(1.0, 1.0, 'D');
  std::string Out = Plot.render();
  EXPECT_NE(Out.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, EmptyPlot) {
  AsciiScatter Plot;
  EXPECT_EQ(Plot.render(), "(empty plot)\n");
}

TEST(AsciiPlotTest, DegenerateRangeDoesNotCrash) {
  AsciiScatter Plot(16, 6);
  Plot.addPoint(2.0, 3.0, 'X');
  Plot.addPoint(2.0, 3.0, 'X');
  std::string Out = Plot.render();
  EXPECT_NE(Out.find('X'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> Visits(1000);
  parallelFor(1000, [&](size_t I) { Visits[I].fetch_add(1); });
  for (const auto &V : Visits)
    EXPECT_EQ(V.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadIsInline) {
  std::vector<int> Order;
  parallelFor(
      10, [&](size_t I) { Order.push_back(static_cast<int>(I)); },
      /*NumThreads=*/1);
  ASSERT_EQ(Order.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPoolTest, ZeroCount) {
  bool Called = false;
  parallelFor(0, [&](size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

// More workers than indices: the worker count clamps to Count, every
// index still runs exactly once, and nothing hangs waiting for the
// excess workers.
TEST(ThreadPoolTest, MoreThreadsThanCount) {
  std::vector<std::atomic<int>> Visits(3);
  parallelFor(
      3, [&](size_t I) { Visits[I].fetch_add(1); },
      /*NumThreads=*/64);
  for (const auto &V : Visits)
    EXPECT_EQ(V.load(), 1);
}

// An exception thrown by the body propagates to the caller (the first
// one thrown wins) instead of terminating the process, and the loop
// stops claiming further work.
TEST(ThreadPoolTest, BodyExceptionPropagates) {
  EXPECT_THROW(
      parallelFor(100,
                  [&](size_t I) {
                    if (I == 7)
                      throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, BodyExceptionPropagatesInline) {
  EXPECT_THROW(parallelFor(
                   10,
                   [&](size_t I) {
                     if (I == 3)
                       throw std::runtime_error("boom");
                   },
                   /*NumThreads=*/1),
               std::runtime_error);
}

// A body may itself call parallelFor on the shared pool. The caller
// participates in its own loop and helps drain the queue while
// waiting, so nesting completes instead of deadlocking even when every
// pool worker is occupied by the outer loop.
TEST(ThreadPoolTest, NestedParallelFor) {
  constexpr size_t Outer = 8, Inner = 64;
  std::vector<std::atomic<int>> Visits(Outer * Inner);
  parallelFor(Outer, [&](size_t O) {
    parallelFor(Inner, [&](size_t I) { Visits[O * Inner + I].fetch_add(1); });
  });
  for (const auto &V : Visits)
    EXPECT_EQ(V.load(), 1);
}

TEST(ThreadPoolTest, SubmitWaitRunsEverything) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 100);
  // wait() with nothing pending returns immediately.
  Pool.wait();
  EXPECT_EQ(Ran.load(), 100);
}

// Tasks submitted from inside a task still run; the destructor drains
// the queue before joining.
TEST(ThreadPoolTest, SubmitFromTaskAndDrainOnDestruction) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(1);
    Pool.submit([&] {
      Ran.fetch_add(1);
      Pool.submit([&] { Ran.fetch_add(1); });
    });
    Pool.wait();
    EXPECT_EQ(Ran.load(), 2);
    Pool.submit([&] { Ran.fetch_add(1); });
    // No wait: destruction must run the straggler.
  }
  EXPECT_EQ(Ran.load(), 3);
}

// Explicit MaxWorkers on a pool instance distributes across exactly
// the requested participants (pool workers + caller) without touching
// the shared pool.
TEST(ThreadPoolTest, InstanceParallelFor) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Visits(500);
  Pool.parallelFor(500, [&](size_t I) { Visits[I].fetch_add(1); });
  for (const auto &V : Visits)
    EXPECT_EQ(V.load(), 1);
}
