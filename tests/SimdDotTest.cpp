//===- tests/SimdDotTest.cpp - vectorized dot-product kernels --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// THE EXACTNESS CONTRACT, pinned differentially: every strategy behind
// simd::dotExact (blocked SIMD, galloping, the probe-table scan) must
// return the same *bits* as the reference scalar merge join for every
// input — size edges around the vector width, duplicates shared across
// sides, disjoint sets, skew ratios that cross the gallop threshold.
// Plus the quantized tier's guarantees: bit-identical dispatch, the
// Scale/2 * L1 error bound, QuantizedStore construction, and end-to-end
// top-k equality of budget-pruned retrieval against the exact scan on
// a clustered corpus.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileStore.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "util/SimdDot.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <vector>

using namespace kast;

namespace {

struct Operand {
  std::vector<uint64_t> Hashes;
  std::vector<double> Values;

  size_t size() const { return Hashes.size(); }
};

/// A hash-sorted operand drawn from a shared universe so two operands
/// drawn from the same universe overlap. Universe slots are spread
/// across the full u64 range (like real feature hashes) by a
/// splitmix-style scramble, keeping the sorted order nontrivial.
Operand makeOperand(Rng &R, size_t Size, uint64_t UniverseSize,
                    uint64_t UniverseSalt = 0) {
  assert(Size <= UniverseSize && "can't draw more distinct slots than exist");
  Operand Op;
  if (Size == 0)
    return Op;
  // Sample distinct slots via a shuffle of [0, UniverseSize).
  std::vector<uint64_t> Slots(UniverseSize);
  for (uint64_t I = 0; I < UniverseSize; ++I)
    Slots[I] = I;
  R.shuffle(Slots);
  Slots.resize(Size);
  for (uint64_t &S : Slots) {
    // The salt occupies bits the slot never reaches, so operands drawn
    // with different salts are disjoint (the scramble is a bijection).
    uint64_t Z = S + (UniverseSalt << 32) + 0x9E3779B97F4A7C15ULL;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    S = Z ^ (Z >> 31);
  }
  std::sort(Slots.begin(), Slots.end());
  Op.Hashes = std::move(Slots);
  Op.Values.reserve(Size);
  for (size_t I = 0; I < Size; ++I)
    Op.Values.push_back(R.uniformReal() * 2.0 - 1.0);
  return Op;
}

uint64_t bits(double V) { return std::bit_cast<uint64_t>(V); }

/// EXPECT bit-equality of the dispatched kernel against the scalar
/// reference in both argument orders.
void expectExactMatchesScalar(const Operand &A, const Operand &B) {
  const double Ref = simd::dotScalar(A.Hashes.data(), A.Values.data(),
                                     A.size(), B.Hashes.data(),
                                     B.Values.data(), B.size());
  const double Got = simd::dotExact(A.Hashes.data(), A.Values.data(), A.size(),
                                    B.Hashes.data(), B.Values.data(), B.size());
  EXPECT_EQ(bits(Ref), bits(Got))
      << "dotExact diverges from dotScalar at sizes " << A.size() << "x"
      << B.size() << " on kernel " << simd::kernelName(simd::activeKernel());
  const double RefRev = simd::dotScalar(B.Hashes.data(), B.Values.data(),
                                        B.size(), A.Hashes.data(),
                                        A.Values.data(), A.size());
  const double GotRev = simd::dotExact(B.Hashes.data(), B.Values.data(),
                                       B.size(), A.Hashes.data(),
                                       A.Values.data(), A.size());
  EXPECT_EQ(bits(RefRev), bits(GotRev));
}

/// Sizes that straddle every block/lane boundary of the implemented
/// kernels (AVX2 blocks of 4, NEON blocks of 2) plus bulk sizes.
const size_t EdgeSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 256};

} // namespace

//===----------------------------------------------------------------------===//
// dotExact vs dotScalar
//===----------------------------------------------------------------------===//

TEST(SimdDotTest, ExactMatchesScalarAcrossSizeEdges) {
  Rng R(7);
  for (size_t ASize : EdgeSizes)
    for (size_t BSize : EdgeSizes) {
      const uint64_t Universe = std::max<uint64_t>(ASize + BSize, 2);
      Operand A = makeOperand(R, ASize, Universe);
      Operand B = makeOperand(R, BSize, Universe);
      expectExactMatchesScalar(A, B);
    }
}

TEST(SimdDotTest, ExactMatchesScalarOnIdenticalOperands) {
  Rng R(11);
  for (size_t Size : {1u, 4u, 5u, 9u, 128u}) {
    Operand A = makeOperand(R, Size, Size * 2);
    expectExactMatchesScalar(A, A); // every position matches
  }
}

TEST(SimdDotTest, ExactMatchesScalarOnDisjointAndAlienHashes) {
  Rng R(13);
  // Disjoint: same universe size, different salts — no slot collides
  // after scrambling (scramble is a bijection, salts differ).
  Operand A = makeOperand(R, 100, 200, /*UniverseSalt=*/1);
  Operand B = makeOperand(R, 100, 200, /*UniverseSalt=*/2);
  expectExactMatchesScalar(A, B);
  EXPECT_EQ(bits(simd::dotExact(A.Hashes.data(), A.Values.data(), A.size(),
                                B.Hashes.data(), B.Values.data(), B.size())),
            bits(+0.0));
  // Alien: one side's hashes from a tiny dense range the other side's
  // scrambled hashes never hit.
  Operand Alien;
  for (uint64_t H = 0; H < 50; ++H) {
    Alien.Hashes.push_back(H);
    Alien.Values.push_back(1.0);
  }
  expectExactMatchesScalar(A, Alien);
}

TEST(SimdDotTest, ExactMatchesScalarAcrossGallopThreshold) {
  Rng R(17);
  // Small-vs-large shapes on both sides of the gallop trigger
  // (ratio 16, floor 128), including exactly at it.
  const std::pair<size_t, size_t> Shapes[] = {
      {8, 100},  {8, 128},  {8, 129},  {8, 4096},
      {16, 255}, {16, 256}, {16, 257}, {1, 5000},
  };
  for (auto [Small, Large] : Shapes) {
    Operand A = makeOperand(R, Small, Small + Large);
    Operand B = makeOperand(R, Large, Small + Large);
    expectExactMatchesScalar(A, B);
  }
}

//===----------------------------------------------------------------------===//
// ExactScan (probe-table one-vs-many)
//===----------------------------------------------------------------------===//

TEST(SimdDotTest, ExactScanMatchesScalarAcrossShapes) {
  Rng R(19);
  simd::ExactScan Scan;
  for (size_t QSize : {0u, 1u, 15u, 16u, 17u, 64u, 300u}) {
    // Big enough for the largest stored side too — drawing more slots
    // than the universe holds would forge duplicate hashes, which the
    // strictly-increasing contract forbids.
    const uint64_t Universe = std::max<uint64_t>(QSize * 2, 512);
    Operand Q = makeOperand(R, QSize, Universe);
    Scan.assign(Q.Hashes.data(), Q.Values.data(), Q.size());
    for (size_t SSize : EdgeSizes) {
      Operand S = makeOperand(R, SSize, Universe);
      const double Ref =
          simd::dotScalar(Q.Hashes.data(), Q.Values.data(), Q.size(),
                          S.Hashes.data(), S.Values.data(), S.size());
      EXPECT_EQ(bits(Ref),
                bits(Scan.dot(S.Hashes.data(), S.Values.data(), S.size())))
          << "ExactScan diverges at " << QSize << "x" << SSize
          << " (table=" << Scan.usingTable() << ")";
    }
  }
}

TEST(SimdDotTest, ExactScanHandlesGallopDelegationShapes) {
  Rng R(23);
  // Stored side large enough to push the scan onto its gallop
  // delegation path; still bit-identical.
  Operand Q = makeOperand(R, 20, 8000);
  simd::ExactScan Scan;
  Scan.assign(Q.Hashes.data(), Q.Values.data(), Q.size());
  Operand S = makeOperand(R, 6000, 8000);
  const double Ref = simd::dotScalar(Q.Hashes.data(), Q.Values.data(),
                                     Q.size(), S.Hashes.data(),
                                     S.Values.data(), S.size());
  EXPECT_EQ(bits(Ref),
            bits(Scan.dot(S.Hashes.data(), S.Values.data(), S.size())));
}

TEST(SimdDotTest, ExactScanReassignReusesCapacity) {
  Rng R(29);
  simd::ExactScan Scan;
  for (int Round = 0; Round < 5; ++Round) {
    Operand Q = makeOperand(R, 50 + Round * 40, 1000);
    Scan.assign(Q.Hashes.data(), Q.Values.data(), Q.size());
    Operand S = makeOperand(R, 120, 1000);
    const double Ref = simd::dotScalar(Q.Hashes.data(), Q.Values.data(),
                                       Q.size(), S.Hashes.data(),
                                       S.Values.data(), S.size());
    EXPECT_EQ(bits(Ref),
              bits(Scan.dot(S.Hashes.data(), S.Values.data(), S.size())));
  }
}

//===----------------------------------------------------------------------===//
// Quantized tier
//===----------------------------------------------------------------------===//

TEST(SimdDotTest, QuantizedDispatchMatchesQuantizedScalar) {
  Rng R(31);
  for (size_t QSize : EdgeSizes)
    for (size_t SSize : {0u, 1u, 4u, 5u, 63u, 256u, 4096u}) {
      const uint64_t Universe = std::max<uint64_t>(QSize + SSize, 2);
      Operand Q = makeOperand(R, QSize, Universe);
      Operand SFull = makeOperand(R, SSize, Universe);
      std::vector<int8_t> S8(SSize);
      double MaxAbs = 0.0;
      for (double V : SFull.Values)
        MaxAbs = std::max(MaxAbs, std::abs(V));
      const double Scale = MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0;
      for (size_t I = 0; I < SSize; ++I)
        S8[I] = static_cast<int8_t>(std::lround(
            Scale > 0.0 ? SFull.Values[I] / Scale : 0.0));
      const double Ref = simd::dotQuantizedScalar(
          Q.Hashes.data(), Q.Values.data(), Q.size(), SFull.Hashes.data(),
          S8.data(), SSize, Scale);
      const double Got = simd::dotQuantized(Q.Hashes.data(), Q.Values.data(),
                                            Q.size(), SFull.Hashes.data(),
                                            S8.data(), SSize, Scale);
      EXPECT_EQ(bits(Ref), bits(Got))
          << "dotQuantized diverges at " << QSize << "x" << SSize;
    }
}

TEST(SimdDotTest, QuantizedStorePerProfileScaleAndRoundTripError) {
  Rng R(37);
  BlendedSpectrumKernel Kernel(3);
  auto Table = TokenTable::create();
  ProfileStore Store;
  for (int I = 0; I < 20; ++I) {
    WeightedString S(Table);
    for (int J = 0; J < 40; ++J)
      S.append("t" + std::to_string(R.uniformInt(0, 9)),
               R.uniformInt(1, 16));
    Store.append(Kernel.profile(S));
  }
  // An all-zero profile quantizes to scale 0 / all-zero codes.
  Store.append(KernelProfile());
  Store.buildQuantized();
  const QuantizedStore *Q = Store.quantized();
  ASSERT_NE(Q, nullptr);
  ASSERT_EQ(Q->size(), Store.size());
  for (size_t I = 0; I < Store.size(); ++I) {
    const ProfileView V = Store.view(I);
    const QuantizedStore::View QV = Q->view(I);
    ASSERT_EQ(QV.Size, V.Size);
    double MaxAbs = 0.0;
    for (size_t E = 0; E < V.Size; ++E)
      MaxAbs = std::max(MaxAbs, std::abs(V.Values[E]));
    EXPECT_DOUBLE_EQ(QV.Scale, MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0);
    // Per-element dequantization error is at most half a step.
    for (size_t E = 0; E < V.Size; ++E)
      EXPECT_LE(std::abs(V.Values[E] - QV.Scale * QV.Values[E]),
                QV.Scale / 2.0 + 1e-15);
  }
  // Appends invalidate the sidecar; rebuilding restores it.
  Store.append(KernelProfile());
  EXPECT_EQ(Store.quantized(), nullptr);
  Store.buildQuantized();
  EXPECT_EQ(Store.quantized()->size(), Store.size());
}

TEST(SimdDotTest, QuantizedDotRespectsL1ErrorBound) {
  Rng R(41);
  for (int Trial = 0; Trial < 20; ++Trial) {
    const size_t QSize = 50 + Trial * 10, SSize = 80 + Trial * 5;
    const uint64_t Universe = (QSize + SSize) / 2; // force heavy overlap
    Operand Q = makeOperand(R, std::min<size_t>(QSize, Universe), Universe);
    Operand S = makeOperand(R, std::min<size_t>(SSize, Universe), Universe);
    std::vector<int8_t> S8(S.size());
    double MaxAbs = 0.0;
    for (double V : S.Values)
      MaxAbs = std::max(MaxAbs, std::abs(V));
    const double Scale = MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0;
    for (size_t I = 0; I < S.size(); ++I)
      S8[I] = static_cast<int8_t>(
          std::lround(Scale > 0.0 ? S.Values[I] / Scale : 0.0));
    const double Exact =
        simd::dotScalar(Q.Hashes.data(), Q.Values.data(), Q.size(),
                        S.Hashes.data(), S.Values.data(), S.size());
    const double Approx = simd::dotQuantized(Q.Hashes.data(), Q.Values.data(),
                                             Q.size(), S.Hashes.data(),
                                             S8.data(), S.size(), Scale);
    double L1 = 0.0;
    for (double V : Q.Values)
      L1 += std::abs(V);
    // |exact - quantized| <= Scale/2 * sum over matches |q_i|
    //                     <= Scale/2 * L1(q).
    EXPECT_LE(std::abs(Exact - Approx), Scale / 2.0 * L1 + 1e-12);
  }
}

//===----------------------------------------------------------------------===//
// Dispatch and the KAST_FORCE_SCALAR knob
//===----------------------------------------------------------------------===//

TEST(SimdDotTest, ForceScalarEnvPinsDetection) {
  const char *Old = std::getenv("KAST_FORCE_SCALAR");
  const std::string Saved = Old ? Old : "";
  // Any non-empty value other than "0" forces the scalar kernel.
  setenv("KAST_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(simd::detectKernel(), simd::DotKernel::Scalar);
  setenv("KAST_FORCE_SCALAR", "yes", 1);
  EXPECT_EQ(simd::detectKernel(), simd::DotKernel::Scalar);
  // Unset, empty, and "0" leave hardware detection in charge.
  setenv("KAST_FORCE_SCALAR", "0", 1);
  const simd::DotKernel Zero = simd::detectKernel();
  setenv("KAST_FORCE_SCALAR", "", 1);
  EXPECT_EQ(simd::detectKernel(), Zero);
  unsetenv("KAST_FORCE_SCALAR");
  EXPECT_EQ(simd::detectKernel(), Zero);
  if (Old)
    setenv("KAST_FORCE_SCALAR", Saved.c_str(), 1);
  EXPECT_STREQ(simd::kernelName(simd::DotKernel::Scalar), "scalar");
  EXPECT_STREQ(simd::kernelName(simd::DotKernel::Avx2), "avx2");
  EXPECT_STREQ(simd::kernelName(simd::DotKernel::Neon), "neon");
}

//===----------------------------------------------------------------------===//
// End-to-end: quantized shortlist against the exact scan
//===----------------------------------------------------------------------===//

namespace {

/// Clustered corpus: BaseCount base strings, each entry a point
/// mutation of its base, so cosine neighborhoods are the sibling
/// groups — margins between in-group and out-group similarities are
/// wide, which is exactly where a budgeted shortlist must not change
/// the final top-k.
std::vector<WeightedString>
clusteredCorpus(const std::shared_ptr<TokenTable> &Table, size_t N,
                size_t BaseCount, Rng &R) {
  const size_t Length = 48;
  const uint32_t Alphabet = 10;
  std::vector<std::vector<std::pair<std::string, uint32_t>>> Bases(BaseCount);
  for (auto &Base : Bases)
    for (size_t I = 0; I < Length; ++I)
      Base.push_back({"t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
                      static_cast<uint32_t>(R.uniformInt(1, 16))});
  std::vector<WeightedString> Out;
  for (size_t I = 0; I < N; ++I) {
    auto Entry = Bases[I % BaseCount];
    for (auto &Tok : Entry)
      if (R.flip(0.25))
        Tok.first = "t" + std::to_string(R.uniformInt(0, Alphabet - 1));
    WeightedString S(Table);
    for (const auto &[Text, Weight] : Entry)
      S.append(Text, Weight);
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

TEST(SimdDotTest, QuantizedShortlistTopKMatchesExactScan) {
  Rng R(43);
  auto Table = TokenTable::create();
  BlendedSpectrumKernel Kernel(3);
  const size_t N = 300;
  std::vector<WeightedString> Corpus = clusteredCorpus(Table, N + 10, 8, R);

  ProfileIndex Index = ProfileIndex::build(
      Kernel, {Corpus.begin(), Corpus.begin() + N});
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 8;
  // Nearly every profile shares some 3-gram with the query (alphabet
  // 10, no df-pruning), so a budget of 64 prunes hard — but it still
  // clears the ~38-profile sibling group the true top-k lives in by a
  // margin far wider than the quantization error.
  Opts.RerankBudget = 64;
  Opts.QuantizedShortlist = true;
  Index.buildRouting(Opts);
  ASSERT_NE(Index.store().quantized(), nullptr);

  for (size_t QI = 0; QI < 10; ++QI) {
    const KernelProfile Query = Kernel.profile(Corpus[N + QI]);
    const std::vector<Neighbor> Exact = Index.query(Query, 5);
    // All centroids probed: candidate recall is total, so the only
    // approximation left is the budgeted shortlist itself.
    const std::vector<Neighbor> Approx =
        Index.queryApprox(Query, 5, /*Normalize=*/true, /*NProbe=*/0);
    ASSERT_EQ(Exact.size(), Approx.size());
    for (size_t I = 0; I < Exact.size(); ++I) {
      EXPECT_EQ(Exact[I].Index, Approx[I].Index) << "rank " << I;
      // Survivors are re-ranked with the exact kernel, so matching ids
      // mean bit-identical similarities.
      EXPECT_EQ(bits(Exact[I].Similarity), bits(Approx[I].Similarity));
    }
  }
}

TEST(SimdDotTest, ExhaustiveModeStaysBitIdenticalWithQuantizedTierBuilt) {
  Rng R(47);
  auto Table = TokenTable::create();
  BlendedSpectrumKernel Kernel(3);
  std::vector<WeightedString> Corpus = clusteredCorpus(Table, 120, 6, R);
  ProfileIndex Index = ProfileIndex::build(
      Kernel, {Corpus.begin(), Corpus.begin() + 100});
  // Pure-defaults routing: no budget, no df-pruning — the documented
  // bit-identity mode. The quantized tier must not engage.
  Index.buildRouting({});
  for (size_t QI = 100; QI < 110; ++QI) {
    const KernelProfile Query = Kernel.profile(Corpus[QI]);
    const std::vector<Neighbor> Exact = Index.query(Query, 7);
    const std::vector<Neighbor> Approx = Index.queryApprox(Query, 7);
    ASSERT_EQ(Exact.size(), Approx.size());
    for (size_t I = 0; I < Exact.size(); ++I) {
      EXPECT_EQ(Exact[I].Index, Approx[I].Index);
      EXPECT_EQ(bits(Exact[I].Similarity), bits(Approx[I].Similarity));
    }
  }
}
