//===- tests/ProfileIndexTest.cpp - profile cache and retrieval ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The persistence contract of the retrieval subsystem: profiles written
// through core/ProfileSerializer reload bit-exactly (hashes, value bit
// patterns, and therefore every dot product), malformed caches fail
// with diagnostics instead of garbage similarities, and ProfileIndex
// queries agree with the Gram-matrix ground truth produced by
// computeKernelMatrix over the same kernel.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "core/ProfileSerializer.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/CorpusIO.h"
#include "workloads/DatasetBuilder.h"

#include <gtest/gtest.h>

#include <bit>
#include <fstream>
#include <sstream>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

std::vector<WeightedString>
randomCorpus(const std::shared_ptr<TokenTable> &Table, Rng &R, size_t N,
             const std::string &Prefix) {
  std::vector<WeightedString> Corpus;
  for (size_t I = 0; I < N; ++I) {
    WeightedString S = randomString(Table, R, R.uniformInt(1, 32), 6);
    S.setName(Prefix + std::to_string(I));
    Corpus.push_back(std::move(S));
  }
  return Corpus;
}

void expectBitExact(const KernelProfile &A, const KernelProfile &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.entries()[I].Hash, B.entries()[I].Hash);
    EXPECT_EQ(std::bit_cast<uint64_t>(A.entries()[I].Value),
              std::bit_cast<uint64_t>(B.entries()[I].Value))
        << "entry " << I;
  }
}

//===----------------------------------------------------------------------===//
// Serializer: bit-exact round-trips, versioning, corruption
//===----------------------------------------------------------------------===//

TEST(ProfileSerializerTest, RoundTripsBitExactAgainstFreshProfiles) {
  Rng R(90210);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 24, "s");
  BlendedSpectrumKernel Kernel(3, 0.8, /*Weighted=*/true, /*CutWeight=*/2);

  ProfileCache Cache;
  Cache.KernelName = Kernel.name();
  for (const WeightedString &S : Corpus)
    Cache.Records.push_back({S.name(), "L", Kernel.profile(S)});

  std::string Path = testing::TempDir() + "/kast_profiles_rt.kpc";
  Status W = writeProfileCacheFile(Cache, Path);
  ASSERT_TRUE(W.ok()) << W.message();
  Expected<ProfileCache> Loaded = readProfileCacheFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();

  ASSERT_EQ(Loaded->Records.size(), Corpus.size());
  EXPECT_EQ(Loaded->KernelName, Kernel.name());
  for (size_t I = 0; I < Corpus.size(); ++I) {
    EXPECT_EQ(Loaded->Records[I].Name, Corpus[I].name());
    EXPECT_EQ(Loaded->Records[I].Label, "L");
    // Bit-exact against a *freshly built* profile, not just the one we
    // serialized: cache hits and cache misses must be indistinguishable.
    expectBitExact(Loaded->Records[I].Profile, Kernel.profile(Corpus[I]));
  }
  // Consequently every pairwise dot is bit-identical too.
  for (size_t I = 0; I < Corpus.size(); ++I)
    for (size_t J = I; J < Corpus.size(); ++J) {
      double Fresh =
          Kernel.profile(Corpus[I]).dot(Kernel.profile(Corpus[J]));
      double Cached =
          Loaded->Records[I].Profile.dot(Loaded->Records[J].Profile);
      EXPECT_EQ(std::bit_cast<uint64_t>(Fresh),
                std::bit_cast<uint64_t>(Cached))
          << I << "," << J;
    }
}

TEST(ProfileSerializerTest, EmptyProfileAndEmptyCacheRoundTrip) {
  std::stringstream Buffer;
  writeProfile(KernelProfile(), Buffer);
  Expected<KernelProfile> P = readProfile(Buffer);
  ASSERT_TRUE(P.hasValue()) << P.message();
  EXPECT_TRUE(P->empty());

  std::stringstream CacheBuffer;
  ProfileCache Empty;
  Empty.KernelName = "k";
  ASSERT_TRUE(writeProfileCache(Empty, CacheBuffer).ok());
  Expected<ProfileCache> Loaded = readProfileCache(CacheBuffer);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->KernelName, "k");
  EXPECT_TRUE(Loaded->Records.empty());
}

TEST(ProfileSerializerTest, RejectsBadMagicVersionAndTruncation) {
  ProfileCache Cache;
  Cache.KernelName = "blended";
  KernelProfile P;
  P.add(42, 1.5);
  P.finalize();
  Cache.Records.push_back({"a1.0", "a", std::move(P)});

  std::stringstream Good;
  ASSERT_TRUE(writeProfileCache(Cache, Good).ok());
  std::string Bytes = Good.str();

  {
    std::string Bad = Bytes;
    Bad[0] = 'X';
    std::stringstream In(Bad);
    Expected<ProfileCache> E = readProfileCache(In);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("magic"), std::string::npos) << E.message();
  }
  {
    std::string Bad = Bytes;
    Bad[8] = 99; // Version field (little-endian low byte).
    std::stringstream In(Bad);
    Expected<ProfileCache> E = readProfileCache(In);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("version"), std::string::npos) << E.message();
  }
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() - 9, size_t(10)}) {
    std::stringstream In(Bytes.substr(0, Cut));
    Expected<ProfileCache> E = readProfileCache(In);
    EXPECT_FALSE(E.hasValue()) << "cut at " << Cut;
  }

  {
    // A corrupt (absurdly large) record count must come back as a
    // truncation diagnostic, not an allocation failure: layout is
    // magic(8) + version(4) + kernel name(4 + 7), so the count's high
    // bytes start at offset 23.
    std::string Bad = Bytes;
    for (size_t I = 23; I < 31; ++I)
      Bad[I] = '\xFF';
    std::stringstream In(Bad);
    Expected<ProfileCache> E = readProfileCache(In);
    ASSERT_FALSE(E.hasValue());
    EXPECT_NE(E.message().find("truncated"), std::string::npos)
        << E.message();
  }
}

//===----------------------------------------------------------------------===//
// ProfileIndex: queries, determinism, Gram ground truth
//===----------------------------------------------------------------------===//

TEST(ProfileIndexTest, TopKOrderingAndTieBreaks) {
  ProfileIndex Index("test");
  auto MakeProfile = [](std::vector<ProfileEntry> Entries) {
    KernelProfile P;
    for (const ProfileEntry &E : Entries)
      P.add(E.Hash, E.Value);
    P.finalize();
    return P;
  };
  // Entries 0 and 2 are identical (tie); entry 1 is orthogonal.
  Index.add("e0", "x", MakeProfile({{1, 1.0}}));
  Index.add("e1", "y", MakeProfile({{2, 1.0}}));
  Index.add("e2", "x", MakeProfile({{1, 1.0}}));

  KernelProfile Query = MakeProfile({{1, 2.0}});
  std::vector<Neighbor> Hits = Index.query(Query, 2);
  ASSERT_EQ(Hits.size(), 2u);
  EXPECT_EQ(Hits[0].Index, 0u); // Tie with 2 breaks toward smaller index.
  EXPECT_EQ(Hits[1].Index, 2u);
  EXPECT_DOUBLE_EQ(Hits[0].Similarity, 1.0); // Cosine.
  EXPECT_EQ(Index.majorityLabel(Hits), "x");

  // K beyond size clamps; orthogonal entry scores zero.
  Hits = Index.query(Query, 10);
  ASSERT_EQ(Hits.size(), 3u);
  EXPECT_EQ(Hits[2].Index, 1u);
  EXPECT_DOUBLE_EQ(Hits[2].Similarity, 0.0);

  // Raw (unnormalized) dot keeps magnitudes.
  Hits = Index.query(Query, 1, /*Normalize=*/false);
  EXPECT_DOUBLE_EQ(Hits[0].Similarity, 2.0);

  // An empty query has vanishing norm: all cosine scores are zero.
  Hits = Index.query(KernelProfile(), 1);
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_DOUBLE_EQ(Hits[0].Similarity, 0.0);
}

TEST(ProfileIndexTest, MajorityLabelCountsAndTieBreaks) {
  // Regression for the O(k²) rescan-per-neighbor counting: the single
  // pass must keep both halves of the documented contract — highest
  // total count wins, and a count *tie* goes to the label whose first
  // occurrence is nearest.
  ProfileIndex Index("test");
  KernelProfile P;
  P.add(1, 1.0);
  P.finalize();
  // Entry i gets label Labels[i]; similarities are irrelevant to the
  // vote, so synthetic Neighbor lists stand in for query results.
  for (const char *Label : {"y", "x", "x", "y", "z"})
    Index.add("e", Label, P);

  // Adversarial tie: y and x both total 2, y's first occurrence is
  // the nearest neighbor → y wins even though x reaches count 2 first
  // during an incremental scan.
  EXPECT_EQ(Index.majorityLabel({{0, 0.9}, {1, 0.8}, {2, 0.7}, {3, 0.6}}),
            "y");
  // Strict majority displaces a nearer singleton: x twice beats y once.
  EXPECT_EQ(Index.majorityLabel({{3, 0.9}, {1, 0.8}, {2, 0.7}}), "x");
  // Duplicate labels scattered among others still aggregate.
  EXPECT_EQ(Index.majorityLabel({{4, 0.9}, {0, 0.8}, {1, 0.7}, {3, 0.6}}),
            "y");
  // Single neighbor and empty list edge cases.
  EXPECT_EQ(Index.majorityLabel({{2, 0.5}}), "x");
  EXPECT_EQ(Index.majorityLabel({}), "");
}

TEST(ProfileIndexTest, EdgeCasesReturnCleanly) {
  KernelProfile P;
  P.add(3, 1.0);
  P.finalize();

  // Querying an empty index: no hits, no crash, for both entry points.
  ProfileIndex Empty("k");
  EXPECT_TRUE(Empty.query(P, 3).empty());
  EXPECT_TRUE(Empty.query(P, 0).empty());
  std::vector<std::vector<Neighbor>> Batch =
      Empty.queryBatch({P, KernelProfile()}, 3, true, 1);
  ASSERT_EQ(Batch.size(), 2u);
  EXPECT_TRUE(Batch[0].empty());
  EXPECT_TRUE(Batch[1].empty());
  EXPECT_EQ(Empty.majorityLabel({}), "");

  ProfileIndex Index("k");
  Index.add("a", "x", P);
  Index.add("b", "y", P);

  // k == 0 is an explicit no-op, not a caller-discipline assumption.
  EXPECT_TRUE(Index.query(P, 0).empty());
  for (const std::vector<Neighbor> &Hits :
       Index.queryBatch({P, P}, 0, true, 1))
    EXPECT_TRUE(Hits.empty());

  // k beyond size() clamps to size().
  EXPECT_EQ(Index.query(P, 100).size(), 2u);
  EXPECT_EQ(Index.queryBatch({P}, 100, true, 1)[0].size(), 2u);
}

TEST(ProfileIndexTest, SaveWritesV2AndLoadsEitherVersion) {
  Rng R(515151);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 10, "c");
  BlendedSpectrumKernel Kernel(3);
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);

  // save() emits the v2 block format...
  std::string V2Path = testing::TempDir() + "/kast_index_v2.kpc";
  ASSERT_TRUE(Index.save(V2Path).ok());
  {
    std::ifstream In(V2Path, std::ios::binary);
    char Magic[8];
    ASSERT_TRUE(In.read(Magic, 8).good());
    unsigned char VersionByte;
    ASSERT_TRUE(
        In.read(reinterpret_cast<char *>(&VersionByte), 1).good());
    EXPECT_EQ(VersionByte, ProfileCacheVersionV2);
  }

  // ...and load() accepts both a v2 file and a legacy v1 file of the
  // same records, with identical query behavior.
  std::string V1Path = testing::TempDir() + "/kast_index_v1.kpc";
  ASSERT_TRUE(writeProfileCacheFile(Index.toCache(), V1Path).ok());
  Expected<ProfileIndex> FromV2 = ProfileIndex::load(V2Path);
  Expected<ProfileIndex> FromV1 = ProfileIndex::load(V1Path);
  ASSERT_TRUE(FromV2.hasValue()) << FromV2.message();
  ASSERT_TRUE(FromV1.hasValue()) << FromV1.message();
  ASSERT_EQ(FromV2->size(), Index.size());
  ASSERT_EQ(FromV1->size(), Index.size());
  KernelProfile Query = Kernel.profile(randomString(Table, R, 20, 6));
  EXPECT_EQ(FromV2->query(Query, 4), Index.query(Query, 4));
  EXPECT_EQ(FromV1->query(Query, 4), Index.query(Query, 4));
}

TEST(ProfileIndexTest, AgreesWithGramMatrixGroundTruth) {
  Rng R(60601);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 20, "c");
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);

  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, /*Threads=*/1);
  ASSERT_EQ(Index.size(), Corpus.size());
  EXPECT_EQ(Index.kernelName(), Kernel.name());

  KernelMatrixOptions Options;
  Options.Threads = 1;
  Matrix K = computeKernelMatrix(Kernel, Corpus, Options);

  for (size_t I = 0; I < Corpus.size(); ++I) {
    std::vector<Neighbor> Hits = Index.query(Index.profile(I), 2);
    ASSERT_EQ(Hits.size(), 2u);
    // Top hit is the string itself at cosine 1.
    EXPECT_EQ(Hits[0].Index, I);
    EXPECT_NEAR(Hits[0].Similarity, 1.0, 1e-12);
    // Runner-up matches the normalized Gram row's best off-diagonal.
    size_t Best = I == 0 ? 1 : 0;
    for (size_t J = 0; J < Corpus.size(); ++J)
      if (J != I && K.at(I, J) > K.at(I, Best))
        Best = J;
    EXPECT_NEAR(Hits[1].Similarity, K.at(I, Best), 1e-9)
        << "query " << I << ": index found " << Hits[1].Index
        << ", Gram argmax " << Best;
  }
}

TEST(ProfileIndexTest, BatchedQueriesMatchSingleQueries) {
  Rng R(424243);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 16, "c");
  std::vector<WeightedString> Queries = randomCorpus(Table, R, 8, "q");
  KSpectrumKernel Kernel(2, /*Weighted=*/true, /*CutWeight=*/2);

  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);
  std::vector<KernelProfile> QueryProfiles;
  for (const WeightedString &Q : Queries)
    QueryProfiles.push_back(Kernel.profile(Q));

  std::vector<std::vector<Neighbor>> Batched =
      Index.queryBatch(QueryProfiles, 3, /*Normalize=*/true, /*Threads=*/0);
  ASSERT_EQ(Batched.size(), Queries.size());
  for (size_t I = 0; I < QueryProfiles.size(); ++I)
    EXPECT_EQ(Batched[I], Index.query(QueryProfiles[I], 3));
}

TEST(ProfileIndexTest, QueryBatchIsThreadCountInvariant) {
  // Regression guard for the scratch-reuse scheme: queryBatch hands
  // each worker chunk one reusable scratch buffer, and a query's
  // result must never depend on what the previous query on the same
  // chunk left behind, nor on how queries map to chunks. Identical
  // batches across thread counts (and therefore chunk counts and
  // reuse patterns) must come back bit-identical.
  Rng R(987654);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 24, "c");
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, {}, 1);

  std::vector<KernelProfile> Queries;
  for (const WeightedString &Q : randomCorpus(Table, R, 13, "q"))
    Queries.push_back(Kernel.profile(Q));
  Queries.push_back(KernelProfile());     // Degenerate query mid-batch.
  Queries.push_back(Queries[0]);          // Duplicate: same chunk or not.

  const auto ExpectBitIdentical =
      [](const std::vector<std::vector<Neighbor>> &A,
         const std::vector<std::vector<Neighbor>> &B, const char *What) {
        ASSERT_EQ(A.size(), B.size()) << What;
        for (size_t Q = 0; Q < A.size(); ++Q) {
          ASSERT_EQ(A[Q].size(), B[Q].size()) << What << " query " << Q;
          for (size_t I = 0; I < A[Q].size(); ++I) {
            EXPECT_EQ(A[Q][I].Index, B[Q][I].Index)
                << What << " query " << Q << " rank " << I;
            EXPECT_EQ(std::bit_cast<uint64_t>(A[Q][I].Similarity),
                      std::bit_cast<uint64_t>(B[Q][I].Similarity))
                << What << " query " << Q << " rank " << I;
          }
        }
      };

  std::vector<std::vector<Neighbor>> Reference =
      Index.queryBatch(Queries, 4, true, /*Threads=*/1);
  for (size_t Threads : {size_t(2), size_t(3), size_t(8)})
    ExpectBitIdentical(Index.queryBatch(Queries, 4, true, Threads), Reference,
                       "exact");
  // Per-query results agree with the batch, so scratch reuse is
  // invisible entirely.
  for (size_t Q = 0; Q < Queries.size(); ++Q)
    EXPECT_EQ(Index.query(Queries[Q], 4), Reference[Q]) << "query " << Q;

  // The approximate tier reuses an epoch-versioned candidate scratch
  // across each chunk's queries — same invariant, same sweep.
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 4;
  Opts.MaxDocFrequency = 0.5;
  Opts.RerankBudget = 8;
  Opts.DefaultNProbe = 2;
  Index.buildRouting(Opts, 1);
  std::vector<std::vector<Neighbor>> ApproxRef =
      Index.queryBatchApprox(Queries, 4, true, /*NProbe=*/0, /*Threads=*/1);
  for (size_t Threads : {size_t(2), size_t(3), size_t(8)})
    ExpectBitIdentical(Index.queryBatchApprox(Queries, 4, true, 0, Threads),
                       ApproxRef, "approx");
  for (size_t Q = 0; Q < Queries.size(); ++Q)
    EXPECT_EQ(Index.queryApprox(Queries[Q], 4), ApproxRef[Q])
        << "approx query " << Q;
}

TEST(ProfileIndexTest, SaveLoadPreservesQueries) {
  Rng R(777);
  auto Table = TokenTable::create();
  std::vector<WeightedString> Corpus = randomCorpus(Table, R, 12, "c");
  std::vector<std::string> Labels;
  for (size_t I = 0; I < Corpus.size(); ++I)
    Labels.push_back(I % 2 == 0 ? "even" : "odd");
  BlendedSpectrumKernel Kernel(3);

  ProfileIndex Index = ProfileIndex::build(Kernel, Corpus, Labels, 1);
  std::string Path = testing::TempDir() + "/kast_index_rt.kpc";
  Status S = Index.save(Path);
  ASSERT_TRUE(S.ok()) << S.message();

  Expected<ProfileIndex> Loaded = ProfileIndex::load(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->size(), Index.size());
  EXPECT_EQ(Loaded->kernelName(), Index.kernelName());
  for (size_t I = 0; I < Index.size(); ++I) {
    EXPECT_EQ(Loaded->name(I), Index.name(I));
    EXPECT_EQ(Loaded->label(I), Index.label(I));
    EXPECT_EQ(Loaded->norm(I), Index.norm(I));
  }
  KernelProfile Query = Kernel.profile(randomString(Table, R, 20, 6));
  EXPECT_EQ(Loaded->query(Query, 5), Index.query(Query, 5));
}

//===----------------------------------------------------------------------===//
// Corpus profile cache (workloads/CorpusIO)
//===----------------------------------------------------------------------===//

TEST(ProfileIndexTest, CorpusProfileCacheVerifiesKernelName) {
  CorpusOptions Shape;
  Shape.BaseA = 2;
  Shape.BaseB = 1;
  Shape.BaseC = 0;
  Shape.BaseD = 0;
  Shape.CopiesPerBase = 1;
  LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), generateCorpus(Shape));
  ASSERT_GT(Data.size(), 0u);

  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  std::string Path = testing::TempDir() + "/kast_corpus_profiles.kpc";
  Status W = writeCorpusProfileCache(Path, Kernel, Data, /*Threads=*/1);
  ASSERT_TRUE(W.ok()) << W.message();

  Expected<ProfileCache> Good = loadCorpusProfileCache(Path, Kernel);
  ASSERT_TRUE(Good.hasValue()) << Good.message();
  ASSERT_EQ(Good->Records.size(), Data.size());
  for (size_t I = 0; I < Data.size(); ++I) {
    EXPECT_EQ(Good->Records[I].Name, Data.string(I).name());
    EXPECT_EQ(Good->Records[I].Label, Data.label(I));
    expectBitExact(Good->Records[I].Profile, Kernel.profile(Data.string(I)));
  }

  // The arena form of the same load: identical provenance and
  // bit-identical profiles, straight into a ProfileStore.
  Expected<ProfileStoreCache> Arena = loadCorpusProfileStore(Path, Kernel);
  ASSERT_TRUE(Arena.hasValue()) << Arena.message();
  ASSERT_EQ(Arena->Store.size(), Data.size());
  for (size_t I = 0; I < Data.size(); ++I) {
    EXPECT_EQ(Arena->Names[I], Data.string(I).name());
    EXPECT_EQ(Arena->Labels[I], Data.label(I));
    expectBitExact(Arena->Store.materialize(I),
                   Kernel.profile(Data.string(I)));
  }

  // A differently-configured kernel names itself differently, and the
  // mismatch is a load-time error, not a silent wrong similarity —
  // through both load forms.
  BlendedSpectrumKernel Other(4, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  ASSERT_NE(Other.name(), Kernel.name());
  Expected<ProfileCache> Bad = loadCorpusProfileCache(Path, Other);
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.message().find(Kernel.name()), std::string::npos)
      << Bad.message();
  Expected<ProfileStoreCache> BadArena = loadCorpusProfileStore(Path, Other);
  ASSERT_FALSE(BadArena.hasValue());
  EXPECT_NE(BadArena.message().find(Kernel.name()), std::string::npos)
      << BadArena.message();
}

} // namespace
