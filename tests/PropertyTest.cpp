//===- tests/PropertyTest.cpp - cross-module invariants --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based sweeps over randomly generated traces and corpus
/// fragments: invariants that every stage of the pipeline must
/// preserve, checked across seeds via parameterized suites.
///
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "core/TreeFlattener.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "linalg/Eigen.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "tree/TreeBuilder.h"
#include "tree/TreeCompressor.h"
#include "workloads/DatasetBuilder.h"

#include <gtest/gtest.h>

using namespace kast;

namespace {

/// A fully random trace: arbitrary op mix, not category-shaped; the
/// pipeline must digest anything.
Trace randomTrace(Rng &R, size_t Length) {
  static const char *Names[] = {"open",  "close", "read",  "write",
                                "lseek", "fsync", "fstat", "pread"};
  Trace T("random");
  for (size_t I = 0; I < Length; ++I) {
    const char *Name = Names[R.uniformInt(0, 7)];
    uint64_t Handle = R.uniformInt(1, 3);
    uint64_t Bytes =
        R.flip(0.3) ? 0 : (1ULL << R.uniformInt(0, 12));
    T.append(TraceEvent(Name, Handle, Bytes));
  }
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeded sweeps over random traces
//===----------------------------------------------------------------------===//

class TraceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceSweep, CompressionConservesPrimitiveOps) {
  Rng R(GetParam());
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = randomTrace(R, R.uniformInt(0, 120));
    PatternTree Tree = buildTree(T);
    uint64_t Before = Tree.totalReps();
    CompressorOptions Options;
    Options.Passes = R.uniformInt(1, 4);
    compressTree(Tree, Options);
    EXPECT_EQ(Tree.totalReps(), Before);
  }
}

TEST_P(TraceSweep, CompressionNeverGrowsLeafCount) {
  Rng R(GetParam() ^ 0x1111);
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = randomTrace(R, R.uniformInt(0, 120));
    PatternTree Tree = buildTree(T);
    size_t Before = Tree.numLeaves();
    CompressionStats Stats = compressTree(Tree);
    EXPECT_LE(Stats.LeavesAfter, Before);
    EXPECT_EQ(Stats.LeavesBefore, Before);
    EXPECT_EQ(Stats.LeavesAfter, Tree.numLeaves());
  }
}

TEST_P(TraceSweep, FlattenUnflattenRoundTrips) {
  Rng R(GetParam() ^ 0x2222);
  auto Table = TokenTable::create();
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = randomTrace(R, R.uniformInt(1, 100));
    PatternTree Tree = buildTree(T);
    compressTree(Tree);
    WeightedString S = flattenTree(Tree, Table);
    Expected<PatternTree> Back = unflattenString(S);
    ASSERT_TRUE(Back.hasValue()) << Back.message();
    EXPECT_TRUE(Back->equalsStructurally(Tree));
  }
}

TEST_P(TraceSweep, StringWeightEqualsOpsPlusStructure) {
  // Token weights partition into: leaf reps (= primitive op count),
  // one per structural node, and the level-up jumps. The first two are
  // exact invariants.
  Rng R(GetParam() ^ 0x3333);
  auto Table = TokenTable::create();
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = randomTrace(R, R.uniformInt(1, 100));
    PatternTree Tree = buildTree(T);
    compressTree(Tree);
    WeightedString S = flattenTree(Tree, Table);

    uint64_t LeafWeight = 0, StructuralCount = 0;
    for (size_t I = 0; I < S.size(); ++I) {
      const std::string &Lit = S.literal(I);
      if (Lit == RootLiteral || Lit == HandleLiteral ||
          Lit == BlockLiteral)
        ++StructuralCount;
      else if (Lit != LevelUpLiteral)
        LeafWeight += S.weight(I);
    }
    EXPECT_EQ(LeafWeight, Tree.totalReps());
    size_t StructuralNodes = 0;
    for (NodeId Id : Tree.preorder())
      StructuralNodes += Tree.node(Id).Kind != NodeKind::Op;
    EXPECT_EQ(StructuralCount, StructuralNodes);
  }
}

TEST_P(TraceSweep, TraceSerializationRoundTrips) {
  Rng R(GetParam() ^ 0x4444);
  for (int Round = 0; Round < 10; ++Round) {
    Trace T = randomTrace(R, R.uniformInt(0, 80));
    Expected<Trace> Back = parseTrace(formatTrace(T), T.name());
    ASSERT_TRUE(Back.hasValue()) << Back.message();
    EXPECT_EQ(Back->events(), T.events());
  }
}

TEST_P(TraceSweep, KernelSymmetryOnPipelineOutput) {
  Rng R(GetParam() ^ 0x5555);
  Pipeline P;
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  for (int Round = 0; Round < 5; ++Round) {
    WeightedString S = P.convert(randomTrace(R, R.uniformInt(1, 80)));
    WeightedString T = P.convert(randomTrace(R, R.uniformInt(1, 80)));
    EXPECT_DOUBLE_EQ(Kernel.evaluate(S, T), Kernel.evaluate(T, S));
    double N = Kernel.evaluateNormalized(S, S);
    if (S.totalWeight() >= 2) {
      EXPECT_NEAR(N, 1.0, 1e-12);
    }
  }
}

TEST_P(TraceSweep, SelfKernelEqualsSquaredWeight) {
  Rng R(GetParam() ^ 0x6666);
  Pipeline P;
  for (int Round = 0; Round < 5; ++Round) {
    WeightedString S = P.convert(randomTrace(R, R.uniformInt(1, 80)));
    for (uint64_t Cut : {1, 2, 8}) {
      KastSpectrumKernel Kernel({Cut});
      double Expected =
          S.totalWeight() >= Cut
              ? static_cast<double>(S.totalWeight()) *
                    static_cast<double>(S.totalWeight())
              : 0.0;
      EXPECT_DOUBLE_EQ(Kernel.evaluate(S, S), Expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Kernel matrix invariants on a small corpus
//===----------------------------------------------------------------------===//

namespace {

LabeledDataset smallCorpus(uint64_t Seed) {
  CorpusOptions Options;
  Options.BaseA = 2;
  Options.BaseB = 2;
  Options.BaseC = 2;
  Options.BaseD = 2;
  Options.CopiesPerBase = 1;
  Options.Seed = Seed;
  return convertCorpus(Pipeline::withBytes(), generateCorpus(Options));
}

} // namespace

class MatrixSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatrixSweep, NormalizedMatrixWellFormed) {
  LabeledDataset Data = smallCorpus(GetParam());
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = computeKernelMatrix(Kernel, Data.strings());
  EXPECT_TRUE(K.isSymmetric(1e-9));
  for (size_t I = 0; I < K.rows(); ++I) {
    EXPECT_DOUBLE_EQ(K.at(I, I), 1.0);
    for (size_t J = 0; J < K.cols(); ++J)
      EXPECT_GE(K.at(I, J), 0.0);
  }
}

TEST_P(MatrixSweep, SerialAndParallelAgree) {
  LabeledDataset Data = smallCorpus(GetParam() ^ 0xABCD);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Serial;
  Serial.Threads = 1;
  KernelMatrixOptions Parallel;
  Parallel.Threads = 0;
  Matrix A = computeKernelMatrix(Kernel, Data.strings(), Serial);
  Matrix B = computeKernelMatrix(Kernel, Data.strings(), Parallel);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(B), 0.0);
}

TEST_P(MatrixSweep, RepairedMatrixIsPsd) {
  LabeledDataset Data = smallCorpus(GetParam() ^ 0xDCBA);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.RepairPsd = true;
  Matrix K = computeKernelMatrix(Kernel, Data.strings(), Options);
  EXPECT_GE(minEigenvalue(K), -1e-8);
}

TEST_P(MatrixSweep, MutantsCloserThanCrossCategory) {
  // Average within-category similarity must exceed average
  // cross-category similarity — the premise of the whole method.
  CorpusOptions Options;
  Options.BaseA = 2;
  Options.BaseB = 2;
  Options.BaseC = 0; // C/D overlap by design; exclude for this bound.
  Options.BaseD = 0;
  Options.CopiesPerBase = 2;
  Options.Seed = GetParam();
  LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), generateCorpus(Options));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = computeKernelMatrix(Kernel, Data.strings());
  double Within = 0.0, Cross = 0.0;
  size_t NumWithin = 0, NumCross = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    for (size_t J = I + 1; J < Data.size(); ++J) {
      if (Data.label(I) == Data.label(J)) {
        Within += K.at(I, J);
        ++NumWithin;
      } else {
        Cross += K.at(I, J);
        ++NumCross;
      }
    }
  ASSERT_GT(NumWithin, 0u);
  ASSERT_GT(NumCross, 0u);
  EXPECT_GT(Within / NumWithin, Cross / NumCross);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixSweep,
                         ::testing::Values(101, 202, 303, 404));

//===----------------------------------------------------------------------===//
// Retrieval invariants: exact scan vs the candidate-generation tier
//===----------------------------------------------------------------------===//

class RetrievalSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetrievalSweep, SelfQueryRanksSelfFirstUnderBothPaths) {
  LabeledDataset Data = smallCorpus(GetParam() ^ 0x5E1F);
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  ProfileIndex Index =
      ProfileIndex::build(Kernel, Data.strings(), Data.labels(), 1);
  ASSERT_GT(Index.size(), 0u);
  // Cluster-pruned but not feature-pruned: with MaxDocFrequency at 1.0
  // a self-query always shares features with itself, and its own
  // cluster is by construction the router's first probe, so even
  // NProbe == 1 must keep the self hit.
  RoutingOptions Opts;
  Opts.Cluster.NumCentroids = 4;
  Opts.DefaultNProbe = 1;
  Index.buildRouting(Opts, 1);

  for (size_t I = 0; I < Index.size(); ++I) {
    KernelProfile Self = Index.profile(I);
    std::vector<Neighbor> Exact = Index.query(Self, 1);
    std::vector<Neighbor> Approx = Index.queryApprox(Self, 1);
    ASSERT_EQ(Exact.size(), 1u) << I;
    ASSERT_EQ(Approx.size(), 1u) << I;
    // Rank 1 is the entry itself at cosine 1 — or an exact duplicate
    // with a lower id, which both paths must agree on (a duplicate has
    // the same features, hence the same cluster, hence is probed).
    EXPECT_NEAR(Exact[0].Similarity, 1.0, 1e-12) << I;
    EXPECT_NEAR(Approx[0].Similarity, 1.0, 1e-12) << I;
    EXPECT_EQ(Approx[0].Index, Exact[0].Index) << I;
    EXPECT_LE(Exact[0].Index, I) << I;
    // Raw (unnormalized): the self dot is the cached self-norm².
    std::vector<Neighbor> Raw =
        Index.queryApprox(Self, 1, /*Normalize=*/false);
    ASSERT_EQ(Raw.size(), 1u) << I;
    EXPECT_GE(Raw[0].Similarity, Index.norm(I) * Index.norm(I) - 1e-9) << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetrievalSweep,
                         ::testing::Values(11, 22, 33, 44));

//===----------------------------------------------------------------------===//
// Fuzz-style robustness: parsers must reject or accept, never crash
//===----------------------------------------------------------------------===//

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, TraceParserDigestsGarbage) {
  Rng R(GetParam() * 31337 + 5);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Junk;
    size_t Length = R.uniformInt(0, 200);
    for (size_t I = 0; I < Length; ++I) {
      // Printable-heavy mix with some control characters.
      if (R.flip(0.9))
        Junk += static_cast<char>(R.uniformInt(32, 126));
      else
        Junk += static_cast<char>(R.uniformInt(0, 31));
    }
    Expected<Trace> T = parseTrace(Junk, "fuzz");
    if (T)
      EXPECT_LE(T->size(), Length); // Sanity only; no crash is the test.
    else
      EXPECT_FALSE(T.message().empty());
  }
}

TEST_P(FuzzSweep, TraceParserAcceptsMangledValidTraces) {
  // Start from a valid trace and splice random bytes in; the parser
  // must produce a trace or a located error, never crash or hang.
  Rng R(GetParam() * 7 + 1);
  Trace Base = randomTrace(R, 40);
  std::string Text = formatTrace(Base);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Mangled = Text;
    size_t Edits = R.uniformInt(1, 5);
    for (size_t E = 0; E < Edits && !Mangled.empty(); ++E) {
      size_t Pos = R.uniformInt(0, Mangled.size() - 1);
      Mangled[Pos] = static_cast<char>(R.uniformInt(32, 126));
    }
    Expected<Trace> T = parseTrace(Mangled, "mangled");
    if (!T) {
      EXPECT_NE(T.message().find("line"), std::string::npos);
    }
  }
}

TEST_P(FuzzSweep, WeightedStringParserDigestsGarbage) {
  Rng R(GetParam() * 97 + 3);
  auto Table = TokenTable::create();
  for (int Round = 0; Round < 50; ++Round) {
    std::string Junk;
    size_t Length = R.uniformInt(0, 120);
    for (size_t I = 0; I < Length; ++I)
      Junk += static_cast<char>(R.uniformInt(33, 126));
    Expected<WeightedString> S = parseWeightedString(Junk, Table);
    if (S && !S->empty()) {
      // Anything parsed must re-serialize and re-parse to itself.
      Expected<WeightedString> Back =
          parseWeightedString(formatWeightedString(*S), Table);
      ASSERT_TRUE(Back.hasValue());
      EXPECT_EQ(*Back, *S);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3));
