//===- tests/ParallelTraceTest.cpp - interleaving invariance ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the representation's central robustness claim (§3.1): because
/// the tree regroups operations by file handle, the weighted string of
/// a parallel run does not depend on how the ranks' events interleave
/// in the global trace — only on each handle's own event sequence and
/// the handles' first-appearance order.
///
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "workloads/ParallelTrace.h"

#include <gtest/gtest.h>

#include <map>

using namespace kast;

namespace {

/// Filters \p Global down to one handle's events.
std::vector<TraceEvent> eventsOfHandle(const Trace &Global,
                                       uint64_t Handle) {
  std::vector<TraceEvent> Out;
  for (const TraceEvent &E : Global.events())
    if (E.Handle == Handle)
      Out.push_back(E);
  return Out;
}

} // namespace

TEST(ParallelTraceTest, DisjointHandlesRemapByRank) {
  Trace T0, T1;
  T0.append(OpKind::Read, 3, 10);
  T1.append(OpKind::Write, 3, 20);
  std::vector<Trace> Ranks = disjointHandles({T0, T1}, 1000);
  EXPECT_EQ(Ranks[0].events()[0].Handle, 3u);
  EXPECT_EQ(Ranks[1].events()[0].Handle, 1003u);
}

TEST(ParallelTraceTest, InterleavingPreservesPerRankOrder) {
  Rng R(42);
  std::vector<Trace> Ranks;
  for (int RankIdx = 0; RankIdx < 4; ++RankIdx) {
    Rng G(100 + RankIdx);
    Ranks.push_back(generateTrace(Category::NormalIO, G));
  }
  Ranks = disjointHandles(Ranks);
  Trace Global = interleaveTraces(Ranks, R);

  size_t Total = 0;
  for (const Trace &Rank : Ranks) {
    Total += Rank.size();
    // Every rank's events appear in the global trace, in order.
    ASSERT_FALSE(Rank.empty());
    uint64_t Handle = Rank.events()[0].Handle;
    EXPECT_EQ(eventsOfHandle(Global, Handle), Rank.events());
  }
  EXPECT_EQ(Global.size(), Total);
}

TEST(ParallelTraceTest, ScheduleDoesNotChangeTheString) {
  // Two manually built schedules of the same two per-handle streams,
  // with identical handle first-appearance order: the strings must be
  // token-identical even though the interleavings differ.
  TraceEvent H1Events[] = {TraceEvent(OpKind::Open, 1),
                           TraceEvent(OpKind::Read, 1, 4096),
                           TraceEvent(OpKind::Read, 1, 4096),
                           TraceEvent(OpKind::Close, 1)};
  TraceEvent H2Events[] = {TraceEvent(OpKind::Open, 2),
                           TraceEvent(OpKind::Write, 2, 512),
                           TraceEvent(OpKind::Write, 2, 512),
                           TraceEvent(OpKind::Close, 2)};

  Trace RoundRobin("rr");
  for (size_t I = 0; I < 4; ++I) {
    RoundRobin.append(H1Events[I]);
    RoundRobin.append(H2Events[I]);
  }
  Trace Bursty("bursty");
  Bursty.append(H1Events[0]); // Keep first-appearance order 1, 2.
  Bursty.append(H2Events[0]);
  Bursty.append(H2Events[1]);
  Bursty.append(H2Events[2]);
  Bursty.append(H1Events[1]);
  Bursty.append(H1Events[2]);
  Bursty.append(H2Events[3]);
  Bursty.append(H1Events[3]);

  Pipeline P;
  EXPECT_EQ(formatWeightedString(P.convert(RoundRobin)),
            formatWeightedString(P.convert(Bursty)));
}

TEST(ParallelTraceTest, RandomSchedulesAgreeUpToHandleOrder) {
  // Random schedules may differ in handle first-appearance order, so
  // compare the multiset of per-handle substrings: filter the global
  // trace per handle and convert each slice independently.
  std::vector<Trace> Ranks;
  for (int RankIdx = 0; RankIdx < 3; ++RankIdx) {
    Rng G(200 + RankIdx);
    Ranks.push_back(generateTrace(Category::RandomPosix, G));
  }
  Ranks = disjointHandles(Ranks);

  auto HandleStrings = [&](const Trace &Global) {
    Pipeline P;
    std::map<uint64_t, std::string> Out;
    for (uint64_t Handle : Global.handles()) {
      Trace Slice("slice");
      Slice.events() = eventsOfHandle(Global, Handle);
      Out[Handle] = formatWeightedString(P.convert(Slice));
    }
    return Out;
  };

  Rng R1(7), R2(77);
  InterleaveOptions Bursty;
  Bursty.Burstiness = 8.0;
  Trace G1 = interleaveTraces(Ranks, R1);
  Trace G2 = interleaveTraces(Ranks, R2, Bursty);
  EXPECT_EQ(HandleStrings(G1), HandleStrings(G2));
}

TEST(ParallelTraceTest, GeneratedParallelRunsAreWellFormed) {
  Rng R(11);
  for (Category C : {Category::FlashIO, Category::NormalIO}) {
    Trace T = generateParallelTrace(C, 4, R);
    EXPECT_FALSE(T.empty());
    // 4 ranks of a multi/single-handle workload: at least 4 handles.
    EXPECT_GE(T.handles().size(), 4u);
  }
}

TEST(ParallelTraceTest, ParallelRunsOfOneCategoryStaySimilar) {
  // The similarity structure survives rank interleaving: two parallel
  // category-C runs are more similar than a C run and a B run.
  Rng R(13);
  Pipeline P;
  WeightedString C1 = P.convert(generateParallelTrace(
      Category::NormalIO, 4, R));
  WeightedString C2 = P.convert(generateParallelTrace(
      Category::NormalIO, 4, R));
  WeightedString B1 = P.convert(generateParallelTrace(
      Category::RandomPosix, 4, R));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  EXPECT_GT(Kernel.evaluateNormalized(C1, C2),
            Kernel.evaluateNormalized(C1, B1));
}
