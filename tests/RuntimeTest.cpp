//===- tests/RuntimeTest.cpp - async serving runtime unit tests ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving-runtime contracts: the MPSC admission ring is bounded
// and loses nothing under contention, the lock-free histograms
// bracket their percentiles, and — above all — the QueryServer's
// async batched answers are bit-identical (scores, order, tie-breaks)
// to synchronous snapshot queries, with backpressure and shutdown
// behaving exactly as documented.
//
//===----------------------------------------------------------------------===//

#include "runtime/Backoff.h"
#include "runtime/MpscQueue.h"
#include "runtime/QueryServer.h"
#include "runtime/ServerStats.h"

#include "index/IndexService.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table, Rng &R,
                            size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// A small populated service plus query probes, shared test fixture
/// material. Labels cycle so majority-vote paths stay exercised.
struct ServedCorpus {
  IndexService Service;
  std::vector<KernelProfile> Queries;
};

ServedCorpus makeCorpus(size_t N, size_t NumQueries, uint64_t Seed,
                        IndexServiceOptions Opts = {}) {
  Rng R(Seed);
  auto Table = TokenTable::create();
  ServedCorpus Out{IndexService(kernel().name(), Opts), {}};
  const char *Cycle[] = {"a", "b", "c"};
  for (size_t I = 0; I < N; ++I)
    Out.Service.add("p" + std::to_string(I), Cycle[I % 3],
                    kernel().profile(randomString(Table, R,
                                                  R.uniformInt(4, 24), 6)));
  for (size_t I = 0; I < NumQueries; ++I)
    Out.Queries.push_back(
        kernel().profile(randomString(Table, R, R.uniformInt(4, 24), 6)));
  return Out;
}

void expectBitIdentical(const std::vector<ServiceHit> &Got,
                        const std::vector<ServiceHit> &Want,
                        const std::string &What) {
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Got[I].Name, Want[I].Name) << What << " hit " << I;
    EXPECT_EQ(Got[I].Label, Want[I].Label) << What << " hit " << I;
    EXPECT_EQ(Got[I].Similarity, Want[I].Similarity) << What << " hit " << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// MpscQueue
//===----------------------------------------------------------------------===//

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> Q(8);
  EXPECT_EQ(Q.capacity(), 8u);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Q.tryPush(int(I)));
  int Overflow = 99;
  EXPECT_FALSE(Q.tryPush(std::move(Overflow))); // Full: bounded means bounded.
  int V = -1;
  for (int I = 0; I < 8; ++I) {
    ASSERT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(Q.tryPop(V)); // Empty again.
  // Slots recycle: a second lap works.
  EXPECT_TRUE(Q.tryPush(42));
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 42);
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscQueue<int>(1024).capacity(), 1024u);
}

// Many producers, one consumer: every pushed value arrives exactly
// once, and values from the same producer arrive in its push order.
TEST(MpscQueueTest, MpscStressLosesNothing) {
  constexpr size_t Producers = 4, PerProducer = 5000;
  MpscQueue<uint64_t> Q(64); // Small ring: constant wraparound.
  std::vector<std::thread> Threads;
  for (size_t P = 0; P < Producers; ++P)
    Threads.emplace_back([&Q, P] {
      Backoff B;
      for (size_t I = 0; I < PerProducer; ++I) {
        uint64_t V = (uint64_t(P) << 32) | I;
        while (!Q.tryPush(std::move(V))) {
          B.pause();
          V = (uint64_t(P) << 32) | I;
        }
        B.reset();
      }
    });
  std::vector<uint64_t> NextExpected(Producers, 0);
  size_t Received = 0;
  Backoff B;
  while (Received < Producers * PerProducer) {
    uint64_t V;
    if (!Q.tryPop(V)) {
      B.pause();
      continue;
    }
    B.reset();
    ++Received;
    const size_t P = V >> 32;
    const uint64_t I = V & 0xffffffffu;
    ASSERT_LT(P, Producers);
    EXPECT_EQ(I, NextExpected[P]) << "per-producer FIFO violated";
    NextExpected[P] = I + 1;
  }
  for (std::thread &T : Threads)
    T.join();
  uint64_t Leftover;
  EXPECT_FALSE(Q.tryPop(Leftover));
}

TEST(BackoffTest, EscalatesToYieldAndResets) {
  Backoff B;
  EXPECT_FALSE(B.yielding());
  for (int I = 0; I < 6; ++I)
    B.pause();
  EXPECT_TRUE(B.yielding());
  B.pause(); // Yield path must not crash.
  B.reset();
  EXPECT_FALSE(B.yielding());
}

//===----------------------------------------------------------------------===//
// ServerStats
//===----------------------------------------------------------------------===//

TEST(ServerStatsTest, EmptyHistogram) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(0.5), 0.0);
  HistogramSummary S = H.summarize();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.P99, 0.0);
}

// Percentiles come back as the containing bucket's upper boundary:
// never below the true percentile, and within the sub-bucket width
// (6.25%) above it.
TEST(ServerStatsTest, PercentilesBracketTruth) {
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 10000; ++V)
    H.record(V);
  HistogramSummary S = H.summarize();
  EXPECT_EQ(S.Count, 10000u);
  EXPECT_NEAR(S.Mean, 5000.5, 1.0);
  EXPECT_EQ(S.Max, 10000.0);
  EXPECT_GE(S.P50, 5000.0);
  EXPECT_LE(S.P50, 5000.0 * 1.0625 + 1);
  EXPECT_GE(S.P95, 9500.0);
  EXPECT_LE(S.P95, 9500.0 * 1.0625 + 1);
  EXPECT_GE(S.P99, 9900.0);
  EXPECT_LE(S.P99, 9900.0 * 1.0625 + 1);
  EXPECT_LE(S.P50, S.P95);
  EXPECT_LE(S.P95, S.P99);
}

TEST(ServerStatsTest, SmallValuesAreExact) {
  LatencyHistogram H;
  for (uint64_t V : {0, 1, 2, 3, 7, 15})
    H.record(V);
  EXPECT_EQ(H.percentile(1.0), 15.0); // Octave 0 buckets are exact.
  EXPECT_EQ(H.percentile(0.01), 0.0);
}

TEST(ServerStatsTest, ConcurrentRecordCountsExactly) {
  LatencyHistogram H;
  constexpr size_t Threads = 4, PerThread = 20000;
  std::vector<std::thread> Pool;
  for (size_t T = 0; T < Threads; ++T)
    Pool.emplace_back([&H, T] {
      for (size_t I = 0; I < PerThread; ++I)
        H.record(T * 1000 + I % 997);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.summarize().Count, Threads * PerThread);
}

TEST(ServerStatsTest, FormatNanos) {
  EXPECT_EQ(ServerStats::formatNanos(500), "500ns");
  EXPECT_EQ(ServerStats::formatNanos(1500), "1.5us");
  EXPECT_EQ(ServerStats::formatNanos(2.5e6), "2.50ms");
  EXPECT_EQ(ServerStats::formatNanos(3.1e9), "3.10s");
}

//===----------------------------------------------------------------------===//
// Batched snapshot seams (what the runtime executes through)
//===----------------------------------------------------------------------===//

// The borrowed-pointer overload and the approx batch must answer
// bit-identically to their one-query-at-a-time counterparts — scratch
// reuse across the batch is invisible in the results.
TEST(RuntimeSeamTest, QueryBatchPointerOverloadMatchesQuery) {
  ServedCorpus C = makeCorpus(60, 10, 123);
  const IndexSnapshot Snap = C.Service.snapshot();
  std::vector<const KernelProfile *> Borrowed;
  for (const KernelProfile &Q : C.Queries)
    Borrowed.push_back(&Q);
  for (size_t K : {size_t(1), size_t(5), size_t(100)}) {
    std::vector<std::vector<ServiceHit>> Batch =
        Snap.queryBatch(Borrowed, K, true, 1);
    ASSERT_EQ(Batch.size(), C.Queries.size());
    for (size_t I = 0; I < C.Queries.size(); ++I)
      expectBitIdentical(Batch[I], Snap.query(C.Queries[I], K, true, 1),
                         "exact batch q" + std::to_string(I));
  }
}

TEST(RuntimeSeamTest, QueryBatchApproxMatchesQueryApprox) {
  ServedCorpus C = makeCorpus(60, 10, 321);
  // Aggressively pruned routing: the batch must reproduce even the
  // approximation's answers bit-for-bit, not just the exact ones.
  RoutingOptions Pruned;
  Pruned.Cluster.NumCentroids = 4;
  Pruned.MaxDocFrequency = 0.5;
  Pruned.DefaultNProbe = 2;
  C.Service.rebuildRouting(Pruned, 1);
  ASSERT_TRUE(C.Service.routed());
  // Post-routing tail + a tombstone inside the routed segment.
  C.Service.add("tail0", "a", C.Queries[0]);
  ASSERT_EQ(C.Service.remove("p7"), 1u);

  const IndexSnapshot Snap = C.Service.snapshot();
  std::vector<const KernelProfile *> Borrowed;
  for (const KernelProfile &Q : C.Queries)
    Borrowed.push_back(&Q);
  for (size_t K : {size_t(1), size_t(5), size_t(100)}) {
    std::vector<std::vector<ServiceHit>> Batch =
        Snap.queryBatchApprox(Borrowed, K, true, 0, 1);
    ASSERT_EQ(Batch.size(), C.Queries.size());
    for (size_t I = 0; I < C.Queries.size(); ++I)
      expectBitIdentical(Batch[I],
                         Snap.queryApprox(C.Queries[I], K, true, 0, 1),
                         "approx batch q" + std::to_string(I));
  }
  // Owned-vector overload takes the same path.
  std::vector<std::vector<ServiceHit>> Owned =
      Snap.queryBatchApprox(C.Queries, 5, true, 0, 1);
  for (size_t I = 0; I < C.Queries.size(); ++I)
    expectBitIdentical(Owned[I], Snap.queryApprox(C.Queries[I], 5, true, 0, 1),
                       "owned approx q" + std::to_string(I));
}

//===----------------------------------------------------------------------===//
// QueryServer: differential exactness
//===----------------------------------------------------------------------===//

// The headline contract: async batched answers are bit-identical to
// synchronous snapshot queries. Writers are quiesced so every
// admission batch sees the same published state.
TEST(QueryServerTest, DifferentialBitIdentityExact) {
  ServedCorpus C = makeCorpus(80, 24, 777);
  const IndexSnapshot Snap = C.Service.snapshot();
  QueryServerOptions Opts;
  Opts.MaxBatch = 8;
  Opts.ExecThreads = 1;
  QueryServer Server(C.Service, Opts);

  // Mixed K and Normalize in flight at once: grouping must route each
  // request through the right parameters.
  std::vector<std::future<QueryResponse>> Futures;
  std::vector<size_t> Ks;
  std::vector<bool> Norms;
  for (size_t I = 0; I < C.Queries.size(); ++I) {
    const size_t K = 1 + I % 7;
    const bool Normalize = I % 3 != 0;
    Ks.push_back(K);
    Norms.push_back(Normalize);
    Futures.push_back(Server.submitBorrowed(C.Queries[I], K, Normalize));
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    QueryResponse Resp = Futures[I].get();
    ASSERT_EQ(Resp.Status, ServeStatus::Ok);
    expectBitIdentical(Resp.Hits, Snap.query(C.Queries[I], Ks[I], Norms[I], 1),
                       "async q" + std::to_string(I));
  }
  // Owned submission answers identically to borrowed.
  QueryResponse Owned = Server.submit(C.Queries[0], 5).get();
  ASSERT_EQ(Owned.Status, ServeStatus::Ok);
  expectBitIdentical(Owned.Hits, Snap.query(C.Queries[0], 5, true, 1),
                     "owned submit");

  const ServerStats::Snapshot Stats = Server.stats().snapshot();
  EXPECT_EQ(Stats.Submitted, C.Queries.size() + 1);
  EXPECT_EQ(Stats.Rejected, 0u);
}

TEST(QueryServerTest, DifferentialBitIdentityApprox) {
  ServedCorpus C = makeCorpus(80, 16, 888);
  RoutingOptions Pruned;
  Pruned.Cluster.NumCentroids = 4;
  Pruned.MaxDocFrequency = 0.6;
  Pruned.DefaultNProbe = 2;
  C.Service.rebuildRouting(Pruned, 1);
  const IndexSnapshot Snap = C.Service.snapshot();

  QueryServerOptions Opts;
  Opts.MaxBatch = 8;
  Opts.ExecThreads = 1;
  Opts.Approx = true;
  QueryServer Server(C.Service, Opts);
  std::vector<std::future<QueryResponse>> Futures;
  for (const KernelProfile &Q : C.Queries)
    Futures.push_back(Server.submitBorrowed(Q, 6));
  for (size_t I = 0; I < Futures.size(); ++I) {
    QueryResponse Resp = Futures[I].get();
    ASSERT_EQ(Resp.Status, ServeStatus::Ok);
    expectBitIdentical(Resp.Hits,
                       Snap.queryApprox(C.Queries[I], 6, true, 0, 1),
                       "async approx q" + std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// QueryServer: backpressure and lifecycle
//===----------------------------------------------------------------------===//

TEST(QueryServerTest, RejectPolicyBouncesWhenFull) {
  ServedCorpus C = makeCorpus(20, 4, 555);
  QueryServerOptions Opts;
  Opts.QueueCapacity = 4;
  Opts.Overflow = OverflowPolicy::Reject;
  Opts.ExecThreads = 1;
  QueryServer Server(C.Service, Opts);
  Server.pause();
  // Let the batcher observe the pause before filling the queue, so it
  // cannot drain a request out from under the capacity math.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::future<QueryResponse>> Queued;
  for (size_t I = 0; I < Server.queueCapacity(); ++I)
    Queued.push_back(Server.submitBorrowed(C.Queries[0], 3));
  // Queue full, batcher paused: the next submissions bounce now.
  for (int I = 0; I < 3; ++I) {
    std::future<QueryResponse> F = Server.submitBorrowed(C.Queries[1], 3);
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(F.get().Status, ServeStatus::Rejected);
  }
  EXPECT_EQ(Server.stats().Rejected.load(), 3u);

  Server.resume();
  for (std::future<QueryResponse> &F : Queued) {
    QueryResponse Resp = F.get();
    EXPECT_EQ(Resp.Status, ServeStatus::Ok);
    EXPECT_FALSE(Resp.Hits.empty());
  }
}

TEST(QueryServerTest, BlockPolicyWaitsForASlot) {
  ServedCorpus C = makeCorpus(20, 4, 666);
  QueryServerOptions Opts;
  Opts.QueueCapacity = 2;
  Opts.Overflow = OverflowPolicy::Block;
  Opts.ExecThreads = 1;
  QueryServer Server(C.Service, Opts);
  Server.pause();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::future<QueryResponse>> Queued;
  for (size_t I = 0; I < Server.queueCapacity(); ++I)
    Queued.push_back(Server.submitBorrowed(C.Queries[0], 3));

  // One more submission from another thread: it must block (queue
  // full), then complete once resume() lets the batcher drain.
  std::promise<std::future<QueryResponse>> Relay;
  std::future<std::future<QueryResponse>> RelayFut = Relay.get_future();
  std::atomic<bool> SubmitReturned{false};
  std::thread Blocked([&] {
    std::future<QueryResponse> F = Server.submitBorrowed(C.Queries[1], 3);
    SubmitReturned.store(true);
    Relay.set_value(std::move(F));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(SubmitReturned.load()) << "submit should be blocking on "
                                         "backpressure while paused";
  Server.resume();
  QueryResponse Resp = RelayFut.get().get();
  EXPECT_EQ(Resp.Status, ServeStatus::Ok);
  Blocked.join();
  for (std::future<QueryResponse> &F : Queued)
    EXPECT_EQ(F.get().Status, ServeStatus::Ok);
}

TEST(QueryServerTest, ShutdownDrainsAdmittedAndBouncesNew) {
  ServedCorpus C = makeCorpus(30, 8, 999);
  QueryServerOptions Opts;
  Opts.ExecThreads = 1;
  auto Server = std::make_unique<QueryServer>(C.Service, Opts);
  std::vector<std::future<QueryResponse>> Futures;
  for (const KernelProfile &Q : C.Queries)
    Futures.push_back(Server->submitBorrowed(Q, 4));
  Server->shutdown();
  for (std::future<QueryResponse> &F : Futures)
    EXPECT_EQ(F.get().Status, ServeStatus::Ok) << "admitted requests drain";

  std::future<QueryResponse> Late = Server->submitBorrowed(C.Queries[0], 4);
  ASSERT_EQ(Late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(Late.get().Status, ServeStatus::ShutDown);
  EXPECT_EQ(Server->stats().RejectedShutdown.load(), 1u);
  Server->shutdown(); // Idempotent.
  Server.reset();     // Destructor after shutdown: no double-join.
}

// A paused server with queued work still drains on shutdown —
// shutdown overrides pause.
TEST(QueryServerTest, ShutdownOverridesPause) {
  ServedCorpus C = makeCorpus(20, 2, 444);
  QueryServerOptions Opts;
  Opts.ExecThreads = 1;
  QueryServer Server(C.Service, Opts);
  Server.pause();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::future<QueryResponse> F = Server.submitBorrowed(C.Queries[0], 3);
  Server.shutdown();
  EXPECT_EQ(F.get().Status, ServeStatus::Ok);
}

//===----------------------------------------------------------------------===//
// QueryServer: concurrency stress
//===----------------------------------------------------------------------===//

// Submitters race writers mutating the service. Every future resolves
// Ok; every answer is internally consistent (sorted, sized, labeled
// from the live namespace); the stats ledger balances.
TEST(QueryServerTest, ConcurrentSubmittersAndIngest) {
  Rng R(2024);
  auto Table = TokenTable::create();
  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = 4;
  SvcOpts.SealThreshold = 16;
  IndexService Service(kernel().name(), SvcOpts);
  std::vector<KernelProfile> Pool;
  for (size_t I = 0; I < 64; ++I)
    Pool.push_back(
        kernel().profile(randomString(Table, R, R.uniformInt(4, 24), 6)));
  for (size_t I = 0; I < 32; ++I)
    Service.add("seed" + std::to_string(I), "a", Pool[I % Pool.size()]);

  QueryServerOptions Opts;
  Opts.MaxBatch = 16;
  Opts.QueueCapacity = 64;
  Opts.ExecThreads = 1;
  QueryServer Server(Service, Opts);

  std::atomic<bool> StopWriter{false};
  std::thread Writer([&] {
    // Windowed churn: the service keeps mutating but stays small, so
    // query cost (and the test's runtime, especially under TSan) does
    // not grow with how long the submitters take.
    size_t Next = 0;
    while (!StopWriter.load()) {
      Service.add("w" + std::to_string(Next), "b",
                  Pool[Next % Pool.size()]);
      if (Next >= 48)
        Service.remove("w" + std::to_string(Next - 48));
      if (Next % 256 == 255)
        Service.compact(1);
      ++Next;
      std::this_thread::yield();
    }
  });

  constexpr size_t Submitters = 3, PerSubmitter = 200;
  std::atomic<size_t> OkCount{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Submitters; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = 0; I < PerSubmitter; ++I) {
        const size_t K = 1 + (T + I) % 6;
        QueryResponse Resp =
            Server.submitBorrowed(Pool[(T * 31 + I) % Pool.size()], K).get();
        ASSERT_EQ(Resp.Status, ServeStatus::Ok);
        EXPECT_LE(Resp.Hits.size(), K);
        for (size_t H = 1; H < Resp.Hits.size(); ++H)
          EXPECT_GE(Resp.Hits[H - 1].Similarity, Resp.Hits[H].Similarity);
        OkCount.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  StopWriter.store(true);
  Writer.join();
  Server.shutdown();

  EXPECT_EQ(OkCount.load(), Submitters * PerSubmitter);
  const ServerStats::Snapshot S = Server.stats().snapshot();
  EXPECT_EQ(S.Submitted, Submitters * PerSubmitter);
  EXPECT_EQ(S.Completed, Submitters * PerSubmitter);
  EXPECT_EQ(S.TotalNs.Count, Submitters * PerSubmitter);
  EXPECT_EQ(S.BatchSize.Count, S.Batches);
  EXPECT_GE(S.BatchSize.Max, 1.0);
}
