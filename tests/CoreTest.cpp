//===- tests/CoreTest.cpp - tokens, flattener, serializer, pipeline --------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Dataset.h"
#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "core/Token.h"
#include "core/TreeFlattener.h"
#include "tree/TreeBuilder.h"
#include "tree/TreeCompressor.h"

#include <gtest/gtest.h>

using namespace kast;

//===----------------------------------------------------------------------===//
// TokenTable / WeightedString
//===----------------------------------------------------------------------===//

TEST(TokenTableTest, InterningIsStable) {
  TokenTable T;
  LiteralId A = T.intern("read[8]");
  LiteralId B = T.intern("write[8]");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.intern("read[8]"), A);
  EXPECT_EQ(T.literal(A), "read[8]");
  EXPECT_EQ(T.size(), 2u);
}

TEST(TokenTableTest, LookupWithoutInterning) {
  TokenTable T;
  EXPECT_EQ(T.lookup("missing"), ~static_cast<LiteralId>(0));
  LiteralId Id = T.intern("x");
  EXPECT_EQ(T.lookup("x"), Id);
}

TEST(WeightedStringTest, AppendAndAccess) {
  auto Table = TokenTable::create();
  WeightedString S(Table, "demo");
  S.append("a", 2);
  S.append("b", 3);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.literal(0), "a");
  EXPECT_EQ(S.weight(1), 3u);
  EXPECT_EQ(S.name(), "demo");
}

TEST(WeightedStringTest, TotalAndRangeWeight) {
  auto Table = TokenTable::create();
  WeightedString S(Table);
  for (uint64_t W : {1, 2, 3, 4, 5})
    S.append("t" + std::to_string(W), W);
  EXPECT_EQ(S.totalWeight(), 15u);
  EXPECT_EQ(S.rangeWeight(0, 0), 0u);
  EXPECT_EQ(S.rangeWeight(1, 4), 2u + 3u + 4u);
  EXPECT_EQ(S.rangeWeight(0, 5), 15u);
}

TEST(WeightedStringTest, RangeWeightValidAfterMutation) {
  auto Table = TokenTable::create();
  WeightedString S(Table);
  S.append("a", 1);
  EXPECT_EQ(S.totalWeight(), 1u); // Builds the prefix cache.
  S.append("b", 2);               // Must invalidate it.
  EXPECT_EQ(S.totalWeight(), 3u);
}

TEST(WeightedStringTest, FilteredWeightMatchesPaperDefinition) {
  auto Table = TokenTable::create();
  WeightedString S(Table);
  S.append("a", 1);
  S.append("b", 4);
  S.append("c", 7);
  EXPECT_EQ(S.filteredWeight(4), 11u);
  EXPECT_EQ(S.filteredWeight(1), 12u);
  EXPECT_EQ(S.filteredWeight(8), 0u);
}

//===----------------------------------------------------------------------===//
// Flattener — Figure 2 style conversions
//===----------------------------------------------------------------------===//

namespace {

/// ROOT -> HANDLE -> BLOCK -> ops tree.
PatternTree simpleTree(const std::vector<std::pair<std::string, uint64_t>>
                           &OpsWithReps) {
  PatternTree T;
  NodeId H = T.addChild(T.root(), NodeKind::Handle);
  NodeId B = T.addChild(H, NodeKind::Block);
  for (const auto &[Name, Reps] : OpsWithReps)
    T.addOp(B, Name, 8, Reps);
  return T;
}

} // namespace

TEST(FlattenerTest, SingleBlockString) {
  PatternTree Tree = simpleTree({{"read", 5}});
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[8]:5");
}

TEST(FlattenerTest, SiblingsGetLevelUpWeightOne) {
  PatternTree Tree = simpleTree({{"read", 2}, {"write", 3}});
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[8]:2 [LEVEL_UP]:1 "
            "write[8]:3");
}

TEST(FlattenerTest, AscentAcrossHandlesCountsLevels) {
  // Two handles, one block each: leaf (depth 3) -> next HANDLE
  // (depth 1) jumps 3 levels.
  PatternTree Tree;
  NodeId H1 = Tree.addChild(Tree.root(), NodeKind::Handle);
  NodeId B1 = Tree.addChild(H1, NodeKind::Block);
  Tree.addOp(B1, "read", 4, 1);
  NodeId H2 = Tree.addChild(Tree.root(), NodeKind::Handle);
  NodeId B2 = Tree.addChild(H2, NodeKind::Block);
  Tree.addOp(B2, "write", 4, 1);

  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[4]:1 [LEVEL_UP]:3 "
            "[HANDLE]:1 [BLOCK]:1 write[4]:1");
}

TEST(FlattenerTest, BlockToBlockJumpsTwo) {
  PatternTree Tree;
  NodeId H = Tree.addChild(Tree.root(), NodeKind::Handle);
  NodeId B1 = Tree.addChild(H, NodeKind::Block);
  Tree.addOp(B1, "read", 4, 2);
  NodeId B2 = Tree.addChild(H, NodeKind::Block);
  Tree.addOp(B2, "read", 4, 7);

  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[4]:2 [LEVEL_UP]:2 "
            "[BLOCK]:1 read[4]:7");
}

TEST(FlattenerTest, TrailingLevelUpOption) {
  PatternTree Tree = simpleTree({{"read", 1}});
  auto Table = TokenTable::create();
  FlattenOptions Options;
  Options.EmitTrailingLevelUp = true;
  WeightedString S = flattenTree(Tree, Table, Options);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[8]:1 [LEVEL_UP]:4");
}

TEST(FlattenerTest, EmptyTreeIsJustRoot) {
  PatternTree Tree;
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(formatWeightedString(S), "[ROOT]:1");
}

TEST(FlattenerTest, CompressedLeafLiteralsCarrySignatures) {
  PatternTree Tree;
  NodeId H = Tree.addChild(Tree.root(), NodeKind::Handle);
  NodeId B = Tree.addChild(H, NodeKind::Block);
  NodeId Op = Tree.addOp(B, "read", 0, 6);
  Tree.node(Op).NameSig = {"read", "write"};
  Tree.node(Op).ByteSig = {2, 4};
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  EXPECT_EQ(S.literal(3), "read+write[2+4]");
  EXPECT_EQ(S.weight(3), 6u);
}

//===----------------------------------------------------------------------===//
// Unflatten (inverse mapping)
//===----------------------------------------------------------------------===//

TEST(UnflattenTest, RoundTripsSimpleTrees) {
  PatternTree Tree = simpleTree({{"read", 5}, {"write", 2}});
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  Expected<PatternTree> Back = unflattenString(S);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_TRUE(Back->equalsStructurally(Tree));
}

TEST(UnflattenTest, RoundTripsMultiHandleTrees) {
  PatternTree Tree;
  for (int HandleIdx = 0; HandleIdx < 3; ++HandleIdx) {
    NodeId H = Tree.addChild(Tree.root(), NodeKind::Handle);
    Tree.node(H).Handle = static_cast<uint64_t>(HandleIdx);
    for (int BlockIdx = 0; BlockIdx <= HandleIdx; ++BlockIdx) {
      NodeId B = Tree.addChild(H, NodeKind::Block);
      Tree.addOp(B, "read", 8 * (BlockIdx + 1), 3);
    }
  }
  auto Table = TokenTable::create();
  WeightedString S = flattenTree(Tree, Table);
  Expected<PatternTree> Back = unflattenString(S);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_TRUE(Back->equalsStructurally(Tree));
}

TEST(UnflattenTest, RejectsMalformedStrings) {
  auto Table = TokenTable::create();
  WeightedString NoRoot(Table);
  NoRoot.append(HandleLiteral, 1);
  EXPECT_FALSE(unflattenString(NoRoot).hasValue());

  WeightedString BadAscent(Table);
  BadAscent.append(RootLiteral, 1);
  BadAscent.append(HandleLiteral, 1);
  BadAscent.append(LevelUpLiteral, 5); // Past the root.
  BadAscent.append(HandleLiteral, 1);
  EXPECT_FALSE(unflattenString(BadAscent).hasValue());

  WeightedString LeafAtTop(Table);
  LeafAtTop.append(RootLiteral, 1);
  LeafAtTop.append("read[8]", 1); // Leaf directly under root.
  EXPECT_FALSE(unflattenString(LeafAtTop).hasValue());

  WeightedString Empty(Table);
  EXPECT_FALSE(unflattenString(Empty).hasValue());
}

//===----------------------------------------------------------------------===//
// Serializer
//===----------------------------------------------------------------------===//

TEST(SerializerTest, RoundTrip) {
  auto Table = TokenTable::create();
  WeightedString S(Table, "rt");
  S.append("[ROOT]", 1);
  S.append("read[2+4]", 12);
  S.append("[LEVEL_UP]", 3);
  Expected<WeightedString> Back =
      parseWeightedString(formatWeightedString(S), Table, "rt");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(*Back, S);
}

TEST(SerializerTest, DefaultWeightIsOne) {
  auto Table = TokenTable::create();
  Expected<WeightedString> S = parseWeightedString("[ROOT] x:3", Table);
  ASSERT_TRUE(S.hasValue());
  EXPECT_EQ(S->weight(0), 1u);
  EXPECT_EQ(S->weight(1), 3u);
}

TEST(SerializerTest, RejectsZeroWeight) {
  auto Table = TokenTable::create();
  EXPECT_FALSE(parseWeightedString("x:0", Table).hasValue());
}

//===----------------------------------------------------------------------===//
// Pipeline end to end
//===----------------------------------------------------------------------===//

TEST(PipelineTest, ConvertsLoopTraceToCompactString) {
  Trace T("loop");
  T.append(OpKind::Open, 1);
  for (int I = 0; I < 10; ++I)
    T.append(OpKind::Read, 1, 4096);
  T.append(OpKind::Close, 1);

  Pipeline P;
  WeightedString S = P.convert(T);
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[4096]:10");
  EXPECT_EQ(S.name(), "loop");
}

TEST(PipelineTest, WithoutBytesIgnoresByteValues) {
  Trace T("t");
  T.append(OpKind::Read, 1, 100);
  T.append(OpKind::Read, 1, 999); // Different size.
  Pipeline P = Pipeline::withoutBytes();
  WeightedString S = P.convert(T);
  // With bytes zeroed, rule 1 collapses the pair.
  EXPECT_EQ(formatWeightedString(S),
            "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[0]:2");
}

TEST(PipelineTest, SharedTableAcrossConversions) {
  Trace T1("a"), T2("b");
  T1.append(OpKind::Read, 1, 8);
  T2.append(OpKind::Read, 2, 8);
  Pipeline P;
  WeightedString S1 = P.convert(T1);
  WeightedString S2 = P.convert(T2);
  EXPECT_EQ(S1.table().get(), S2.table().get());
  // Same pattern, same ids.
  EXPECT_EQ(S1.literalIds(), S2.literalIds());
}

TEST(PipelineTest, DetailedResultExposesStages) {
  Trace T("d");
  T.append(OpKind::Open, 1);
  T.append(OpKind::Write, 1, 7);
  T.append(OpKind::Write, 1, 7);
  T.append(OpKind::Close, 1);
  Pipeline P;
  PipelineResult R = P.convertDetailed(T);
  EXPECT_EQ(R.Stats.LeavesBefore, 2u);
  EXPECT_EQ(R.Stats.LeavesAfter, 1u);
  EXPECT_EQ(R.Tree.totalReps(), 2u);
  EXPECT_EQ(R.String.size(), 4u);
}

//===----------------------------------------------------------------------===//
// LabeledDataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, LabelsAndIndices) {
  auto Table = TokenTable::create();
  LabeledDataset D;
  for (int I = 0; I < 5; ++I) {
    WeightedString S(Table, "s" + std::to_string(I));
    S.append("x", 1);
    D.add(std::move(S), I < 3 ? "A" : "B");
  }
  EXPECT_EQ(D.size(), 5u);
  EXPECT_EQ(D.labelSet(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(D.indicesOf("A"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(D.labelCounts().at("B"), 2u);
}

//===----------------------------------------------------------------------===//
// KernelMatrix edge cases
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"

TEST(KernelMatrixTest, EmptyCorpus) {
  KastSpectrumKernel Kernel({2});
  Matrix K = computeKernelMatrix(Kernel, {});
  EXPECT_EQ(K.rows(), 0u);
}

TEST(KernelMatrixTest, SingleString) {
  auto Table = TokenTable::create();
  WeightedString S(Table, "solo");
  S.append("a", 5);
  KastSpectrumKernel Kernel({2});
  Matrix K = computeKernelMatrix(Kernel, {S});
  ASSERT_EQ(K.rows(), 1u);
  EXPECT_DOUBLE_EQ(K.at(0, 0), 1.0); // Normalized diagonal.
  KernelMatrixOptions Raw;
  Raw.Normalize = false;
  Matrix KRaw = computeKernelMatrix(Kernel, {S}, Raw);
  EXPECT_DOUBLE_EQ(KRaw.at(0, 0), 25.0);
}

TEST(KernelMatrixTest, SubCutStringsGetZeroRows) {
  auto Table = TokenTable::create();
  WeightedString Light(Table, "light"), Heavy(Table, "heavy");
  Light.append("a", 1);
  Heavy.append("a", 10);
  KastSpectrumKernel Kernel({5}); // Light weighs 1 < 5.
  Matrix K = computeKernelMatrix(Kernel, {Light, Heavy});
  EXPECT_DOUBLE_EQ(K.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(K.at(0, 0), 1.0); // Diagonal convention.
}

TEST(KernelMatrixTest, UnnormalizedValuesAreRawKernels) {
  auto Table = TokenTable::create();
  WeightedString A(Table), B(Table);
  A.append("x", 3);
  B.append("x", 4);
  KastSpectrumKernel Kernel({2});
  KernelMatrixOptions Raw;
  Raw.Normalize = false;
  Matrix K = computeKernelMatrix(Kernel, {A, B}, Raw);
  EXPECT_DOUBLE_EQ(K.at(0, 1), 12.0);
  EXPECT_DOUBLE_EQ(K.at(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(K.at(1, 1), 16.0);
}
